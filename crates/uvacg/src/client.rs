//! The client side of the testbed (§4.6).
//!
//! "First, the scientist uses a GUI tool to assemble the description
//! of their job set. The tool starts a TCP-based server thread that
//! will respond to requests for any input files that need to come from
//! the scientist's local file system ... Finally, the client program
//! starts one of WSRF.NET's light-weight notification receivers to
//! receive asynchronous, WS-Notification compliant, notifications."
//!
//! [`Client`] bundles all three: a local in-memory file store served
//! under a `soap.tcp://` address (the WSE-TCP server thread), a
//! [`NotificationListener`], and the submission call. [`JobSetHandle`]
//! is what the scientist watches: progress events, per-job working
//! directories (for monitoring "by watching for changes in that
//! directory"), final outcome and output retrieval.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simclock::Clock;
use ws_notification::consumer::NotificationListener;
use ws_notification::message::NotificationMessage;
use wsrf_core::container::action_uri;
use wsrf_security::wsse::UsernameToken;
use wsrf_soap::ns::UVACG;
use wsrf_soap::{BaseFault, EndpointReference, Envelope, SoapFault};
use wsrf_transport::{Endpoint, InProcNetwork};
use wsrf_xml::Element;

use crate::es;
use crate::fss;
use crate::jobset::JobSetSpec;
use crate::scheduler;
use crate::security::GridSecurity;

/// The scientist's workstation.
pub struct Client {
    /// Client id (appears in its addresses).
    pub id: String,
    net: Arc<InProcNetwork>,
    clock: Clock,
    listener: NotificationListener,
    files: Arc<Mutex<HashMap<String, Bytes>>>,
    fileserver_address: String,
    scheduler: EndpointReference,
    security: Option<(Arc<GridSecurity>, String)>,
}

/// The WSE-TCP file server thread: answers `FileSystem/Read` for
/// `local://` paths.
struct ClientFileServer {
    files: Arc<Mutex<HashMap<String, Bytes>>>,
}

impl Endpoint for ClientFileServer {
    fn handle(&self, env: Envelope) -> Option<Envelope> {
        if !env.body.name.is(UVACG, "Read") {
            return Some(SoapFault::client("client file server only supports Read").to_envelope());
        }
        let Some(name) = env.body.find(UVACG, "FileName").map(|e| e.text_content()) else {
            return Some(SoapFault::client("missing FileName").to_envelope());
        };
        match self.files.lock().get(&name) {
            Some(content) => Some(Envelope::new(fss::read_response(content))),
            None => Some(
                SoapFault::from_base(BaseFault::new(
                    "uvacg:NoSuchFile",
                    format!("no local file '{name}' on the client"),
                ))
                .to_envelope(),
            ),
        }
    }

    fn name(&self) -> &str {
        "client-file-server"
    }
}

impl Client {
    /// Create a client: registers its file server (under
    /// `soap.tcp://<id>/files`, modeling the WSE-TCP thread) and its
    /// notification listener (`inproc://<id>/listener`).
    ///
    /// `security` carries the campus PKI and the scheduler's subject
    /// name; `None` submits plaintext credentials.
    pub fn new(
        id: &str,
        net: Arc<InProcNetwork>,
        clock: Clock,
        scheduler: EndpointReference,
        security: Option<(Arc<GridSecurity>, String)>,
    ) -> Client {
        let files: Arc<Mutex<HashMap<String, Bytes>>> = Arc::new(Mutex::new(HashMap::new()));
        let fileserver_address = format!("soap.tcp://{id}/files");
        net.register(
            &fileserver_address,
            Arc::new(ClientFileServer {
                files: files.clone(),
            }) as Arc<dyn Endpoint>,
        );
        let listener = NotificationListener::register(&net, &format!("inproc://{id}/listener"));
        Client {
            id: id.to_string(),
            net,
            clock,
            listener,
            files,
            fileserver_address,
            scheduler,
            security,
        }
    }

    /// Put a file on the client's local disk (e.g. `C:\data\in.dat`).
    pub fn put_file(&self, path: impl Into<String>, content: impl Into<Bytes>) {
        self.files.lock().insert(path.into(), content.into());
    }

    /// Read back a local file.
    pub fn local_file(&self, path: &str) -> Option<Bytes> {
        self.files.lock().get(path).cloned()
    }

    /// The client's notification listener (receives every event of
    /// every job set it submits).
    pub fn listener(&self) -> &NotificationListener {
        &self.listener
    }

    /// The address of the client's file server.
    pub fn fileserver_address(&self) -> &str {
        &self.fileserver_address
    }

    /// Rediscover job sets previously submitted to this grid's
    /// Scheduler — the answer to §5's "how a client might possibly
    /// rediscover their resources should their EPRs be lost". Returns
    /// restored handles (no event history; their resource-backed
    /// methods — `status`, `resource_outcome`, `job_dir`,
    /// `fetch_output` — all work).
    pub fn rediscover(&self, name: Option<&str>) -> Result<Vec<JobSetHandle>, SoapFault> {
        let mut body = Element::new(UVACG, "FindJobSets");
        if let Some(n) = name {
            body = body.attr("name", n);
        }
        let mut env = Envelope::new(body);
        wsrf_soap::MessageInfo::request(
            self.scheduler.clone(),
            action_uri("Scheduler", "FindJobSets"),
        )
        .apply(&mut env);
        let resp = self
            .net
            .call(&self.scheduler.address, env)
            .map_err(|e| SoapFault::server(e.to_string()))?;
        if let Some(f) = resp.fault() {
            return Err(f);
        }
        let mut handles = Vec::new();
        for js in resp.body.find_all(UVACG, "JobSet") {
            let Some(epr_el) = js.find(UVACG, "JobSetEpr") else {
                continue;
            };
            let Ok(jobset) = EndpointReference::from_element(epr_el) else {
                continue;
            };
            handles.push(JobSetHandle {
                topic: js.attr_value("topic").unwrap_or_default().to_string(),
                jobset,
                listener: self.listener.clone(),
                net: self.net.clone(),
                clock: self.clock.clone(),
            });
        }
        Ok(handles)
    }

    /// Submit a job set under the given grid account.
    pub fn submit(
        &self,
        spec: &JobSetSpec,
        user: &str,
        password: &str,
    ) -> Result<JobSetHandle, SoapFault> {
        let (header, plain) = match &self.security {
            Some((sec, scheduler_subject)) => {
                let tok = UsernameToken::new(user, password);
                let header = sec.encrypt_token(&tok, scheduler_subject).ok_or_else(|| {
                    SoapFault::client(format!("scheduler '{scheduler_subject}' not enrolled"))
                })?;
                (Some(header), None)
            }
            None => (None, Some((user, password))),
        };
        let reply = scheduler::submit(
            &self.net,
            &self.scheduler,
            spec,
            Some(&self.listener.epr()),
            Some(&self.fileserver_address),
            header,
            plain,
        )?;
        Ok(JobSetHandle {
            topic: reply.topic,
            jobset: reply.jobset,
            listener: self.listener.clone(),
            net: self.net.clone(),
            clock: self.clock.clone(),
        })
    }
}

/// Final outcome of a job set.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSetOutcome {
    /// Every job exited 0.
    Completed,
    /// Some job failed; the fault chain explains where and why.
    Failed(Box<BaseFault>),
}

/// A submitted job set, as seen from the client.
#[derive(Clone)]
pub struct JobSetHandle {
    /// The notification topic base (`jobset-<key>`).
    pub topic: String,
    /// The job-set WS-Resource.
    pub jobset: EndpointReference,
    listener: NotificationListener,
    net: Arc<InProcNetwork>,
    clock: Clock,
}

impl std::fmt::Debug for JobSetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSetHandle")
            .field("topic", &self.topic)
            .field("jobset", &self.jobset)
            .finish_non_exhaustive()
    }
}

impl JobSetHandle {
    /// Non-blocking: the outcome if the terminal event has arrived.
    pub fn outcome(&self) -> Option<JobSetOutcome> {
        let completed = format!("{}/completed", self.topic);
        let failed = format!("{}/failed", self.topic);
        for m in self.listener.received() {
            let t = m.topic.to_string();
            if t == completed {
                return Some(JobSetOutcome::Completed);
            }
            if t == failed {
                let fault = m
                    .payload
                    .find(wsrf_soap::ns::WSBF, "BaseFault")
                    .map(BaseFault::from_element)
                    .unwrap_or_else(|| BaseFault::new("uvacg:JobSetFailed", "job set failed"));
                return Some(JobSetOutcome::Failed(Box::new(fault)));
            }
        }
        None
    }

    /// Blocking wait (real time) for the outcome; only meaningful on a
    /// scaled clock. Returns `None` on timeout.
    pub fn wait(&self, timeout: std::time::Duration) -> Option<JobSetOutcome> {
        let topic = self.topic.clone();
        self.listener.wait_until(timeout, move |m| {
            let t = m.topic.to_string();
            t == format!("{topic}/completed") || t == format!("{topic}/failed")
        })?;
        self.outcome()
    }

    /// Blocking wait (real time) for a job's `started` event (scaled
    /// clock only). Returns false on timeout.
    pub fn wait_job_started(&self, job: &str, timeout: std::time::Duration) -> bool {
        let topic = format!("{}/job/{job}/started", self.topic);
        self.listener
            .wait_until(timeout, move |m| m.topic.to_string() == topic)
            .is_some()
    }

    /// All events observed for this job set so far.
    pub fn events(&self) -> Vec<NotificationMessage> {
        let prefix = format!("{}/", self.topic);
        self.listener
            .received()
            .into_iter()
            .filter(|m| {
                let t = m.topic.to_string();
                t == self.topic || t.starts_with(&prefix)
            })
            .collect()
    }

    /// The working-directory EPR broadcast for a job (step 9): "The
    /// client can use this EPR to retrieve files generated by the job
    /// or monitor progress by watching for changes in that directory."
    ///
    /// Falls back to the job-set resource's `JobDirectory` property
    /// when the event is not in this listener's history — the §5
    /// rediscovery path for handles restored after a client restart.
    pub fn job_dir(&self, job: &str) -> Option<EndpointReference> {
        let topic = format!("{}/job/{job}/dir", self.topic);
        let from_events = self
            .listener
            .received()
            .iter()
            .find(|m| m.topic.to_string() == topic)
            .and_then(|m| EndpointReference::from_element(&m.payload).ok());
        if from_events.is_some() {
            return from_events;
        }
        let proxy = wsrf_core::ResourceProxy::new(&self.net, self.jobset.clone());
        let doc = proxy.document().ok()?;
        doc.get_local("JobDirectory")
            .iter()
            .find(|e| e.attr_value("job") == Some(job))
            .and_then(|e| EndpointReference::from_element(e).ok())
    }

    /// Authoritative outcome from the job-set resource itself (works
    /// on restored handles with no event history).
    pub fn resource_outcome(&self) -> Result<Option<JobSetOutcome>, SoapFault> {
        match self.status()?.as_str() {
            "Completed" => Ok(Some(JobSetOutcome::Completed)),
            "Failed" => {
                let proxy = wsrf_core::ResourceProxy::new(&self.net, self.jobset.clone());
                let fault = proxy
                    .document()?
                    .get_local("Fault")
                    .first()
                    .and_then(|f| f.find(wsrf_soap::ns::WSBF, "BaseFault").cloned())
                    .map(|f| BaseFault::from_element(&f))
                    .unwrap_or_else(|| BaseFault::new("uvacg:JobSetFailed", "job set failed"));
                Ok(Some(JobSetOutcome::Failed(Box::new(fault))))
            }
            _ => Ok(None),
        }
    }

    /// The job EPR broadcast when a job starts.
    pub fn job_epr(&self, job: &str) -> Option<EndpointReference> {
        let topic = format!("{}/job/{job}/started", self.topic);
        self.listener
            .received()
            .iter()
            .find(|m| m.topic.to_string() == topic)
            .and_then(|m| EndpointReference::from_element(&m.payload).ok())
    }

    /// Poll a running/finished job's status resource property.
    pub fn poll_job_status(&self, job: &str) -> Option<String> {
        let epr = self.job_epr(job)?;
        es::job_status(&self.net, &epr).ok()
    }

    /// Fetch a file a job produced, via `Read` on its directory EPR.
    pub fn fetch_output(&self, job: &str, file: &str) -> Result<Bytes, SoapFault> {
        let dir = self
            .job_dir(job)
            .ok_or_else(|| SoapFault::client(format!("no working directory known for '{job}'")))?;
        fss::read(&self.net, &dir, file)
    }

    /// Watch a job's directory (the `List` polling loop the paper
    /// mentions).
    pub fn list_job_dir(&self, job: &str) -> Result<Vec<(String, Option<u64>)>, SoapFault> {
        let dir = self
            .job_dir(job)
            .ok_or_else(|| SoapFault::client(format!("no working directory known for '{job}'")))?;
        fss::list(&self.net, &dir)
    }

    /// The job set's `Status` resource property (server-side view).
    pub fn status(&self) -> Result<String, SoapFault> {
        let mut env =
            Envelope::new(Element::new(wsrf_soap::ns::WSRP, "GetResourceProperty").text("Status"));
        wsrf_soap::MessageInfo::request(
            self.jobset.clone(),
            wsrf_core::porttypes::wsrp_action("GetResourceProperty"),
        )
        .apply(&mut env);
        let resp = self
            .net
            .call(&self.jobset.address, env)
            .map_err(|e| SoapFault::server(e.to_string()))?;
        if let Some(f) = resp.fault() {
            return Err(f);
        }
        Ok(resp.body.text_content())
    }

    /// Kill a running job of this set.
    pub fn kill_job(&self, job: &str) -> Result<bool, SoapFault> {
        let epr = self
            .job_epr(job)
            .ok_or_else(|| SoapFault::client(format!("job '{job}' has not started")))?;
        es::kill(&self.net, &epr)
    }

    /// The grid clock (manual-mode tests advance it to drive the run).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The action URI used by Kill (exposed for traffic accounting in
    /// benches).
    pub fn kill_action() -> String {
        action_uri("Execution", "Kill")
    }
}
