//! Resource state persistence backends.
//!
//! WSRF.NET "implements WS-Resources using any ODBC compliant database"
//! and §5 of the paper discusses the resulting tension: relational
//! stores want fixed typed columns, arbitrary resource state doesn't
//! fit, and storing state "as binary, unstructured data is effective
//! for loading and storing, but makes it very difficult to query".
//! The three backends here make that trade-off measurable (E7):
//!
//! * [`MemoryStore`] — plain in-memory documents; the baseline.
//! * [`StructuredStore`] — a relational-style table per service with a
//!   declared, typed column schema. Fast queries, but rejects resource
//!   state that does not fit the schema (the paper's pain point).
//! * [`BlobStore`] — serializes each document to XML text. Accepts
//!   anything; every load *and every query row* pays a full parse (the
//!   paper's other pain point, which pushed the authors toward XML
//!   databases like Yukon).
//!
//! All three are backed by [`ShardedRows`]: rows live in `SHARDS`
//! independently locked partitions chosen by hashing `(service, key)`,
//! so resources on different shards never contend on a store lock and
//! point lookups borrow the caller's `&str`s instead of allocating a
//! `(String, String)` probe key.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::RwLock;
use wsrf_xml::xpath::Path;
use wsrf_xml::QName;

use crate::properties::PropertyDoc;

/// Errors raised by resource stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No resource with the given key.
    NotFound(String),
    /// `create` with a key that already exists.
    AlreadyExists(String),
    /// The document does not fit the store's schema
    /// ([`StructuredStore`] only).
    Schema(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "no such resource '{k}'"),
            StoreError::AlreadyExists(k) => write!(f, "resource '{k}' already exists"),
            StoreError::Schema(m) => write!(f, "schema violation: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A persistence backend for WS-Resource state. One store instance
/// may serve many services; rows are keyed by `(service, key)`.
pub trait ResourceStore: Send + Sync {
    /// Create a new resource. Fails if the key exists.
    fn create(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError>;

    /// Load a resource's property document.
    fn load(&self, service: &str, key: &str) -> Result<PropertyDoc, StoreError>;

    /// Persist a (possibly modified) property document.
    fn save(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError>;

    /// Remove a resource. Fails if absent.
    fn destroy(&self, service: &str, key: &str) -> Result<(), StoreError>;

    /// True if the resource exists.
    fn exists(&self, service: &str, key: &str) -> bool;

    /// All keys of a service, in unspecified order.
    fn list(&self, service: &str) -> Vec<String>;

    /// Keys of resources whose property document matches an XPath-lite
    /// expression (evaluated against a document rooted at
    /// `<Properties>`).
    fn query(&self, service: &str, path: &Path) -> Vec<String>;

    /// Backend label for diagnostics and bench tables.
    fn backend_name(&self) -> &'static str;
}

fn doc_root() -> QName {
    QName::new("urn:wsrf-store", "Properties")
}

fn matches(doc: &PropertyDoc, path: &Path) -> bool {
    !path.select(&doc.to_document(doc_root())).is_empty()
}

// ---------------------------------------------------------------------
// ShardedRows
// ---------------------------------------------------------------------

/// Number of lock partitions per store. Power of two so the shard
/// index is a mask, sized so a campus-grid's worth of services never
/// funnels through one lock.
pub(crate) const SHARDS: usize = 16;

pub(crate) fn shard_of(service: &str, key: &str) -> usize {
    let mut h = DefaultHasher::new();
    service.hash(&mut h);
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

/// The sharded `(service, key) → T` map under every backend. Each
/// shard holds a `service → key → row` nested map so point operations
/// probe with borrowed `&str`s — no per-lookup `String` allocation —
/// and scans (`list`/`query`) walk the shards one read lock at a time.
struct ShardedRows<T> {
    shards: [RwLock<HashMap<String, HashMap<String, T>>>; SHARDS],
}

impl<T> Default for ShardedRows<T> {
    fn default() -> Self {
        ShardedRows {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }
}

impl<T> ShardedRows<T> {
    /// Insert a fresh row; `AlreadyExists` if `(service, key)` is taken.
    /// Single probe of the key map via the entry API.
    fn create(&self, service: &str, key: &str, row: T) -> Result<(), StoreError> {
        let mut shard = self.shards[shard_of(service, key)].write();
        match shard
            .entry(service.to_string())
            .or_default()
            .entry(key.to_string())
        {
            Entry::Occupied(_) => Err(StoreError::AlreadyExists(key.to_string())),
            Entry::Vacant(slot) => {
                slot.insert(row);
                Ok(())
            }
        }
    }

    /// Overwrite an existing row; `NotFound` if absent. Single probe,
    /// no allocation on the hot path.
    fn update(&self, service: &str, key: &str, row: T) -> Result<(), StoreError> {
        let mut shard = self.shards[shard_of(service, key)].write();
        match shard.get_mut(service).and_then(|keys| keys.get_mut(key)) {
            Some(slot) => {
                *slot = row;
                Ok(())
            }
            None => Err(StoreError::NotFound(key.to_string())),
        }
    }

    /// Read a row through a closure while the shard lock is held.
    fn get<R>(&self, service: &str, key: &str, f: impl FnOnce(&T) -> R) -> Option<R> {
        let shard = self.shards[shard_of(service, key)].read();
        shard.get(service).and_then(|keys| keys.get(key)).map(f)
    }

    fn remove(&self, service: &str, key: &str) -> Result<(), StoreError> {
        let mut shard = self.shards[shard_of(service, key)].write();
        let Some(keys) = shard.get_mut(service) else {
            return Err(StoreError::NotFound(key.to_string()));
        };
        if keys.remove(key).is_none() {
            return Err(StoreError::NotFound(key.to_string()));
        }
        if keys.is_empty() {
            shard.remove(service);
        }
        Ok(())
    }

    fn contains(&self, service: &str, key: &str) -> bool {
        let shard = self.shards[shard_of(service, key)].read();
        shard
            .get(service)
            .is_some_and(|keys| keys.contains_key(key))
    }

    fn list(&self, service: &str) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            if let Some(keys) = shard.read().get(service) {
                out.extend(keys.keys().cloned());
            }
        }
        out
    }

    /// Visit every `(key, row)` of a service, shard by shard.
    fn for_each(&self, service: &str, mut f: impl FnMut(&str, &T)) {
        for shard in &self.shards {
            if let Some(keys) = shard.read().get(service) {
                for (key, row) in keys.iter() {
                    f(key, row);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(HashMap::len).sum::<usize>())
            .sum()
    }
}

// ---------------------------------------------------------------------
// MemoryStore
// ---------------------------------------------------------------------

/// In-memory store holding decoded documents. Fast everything; no
/// schema; the baseline backend and the default for tests.
#[derive(Default)]
pub struct MemoryStore {
    rows: ShardedRows<PropertyDoc>,
}

impl MemoryStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows across all services.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ResourceStore for MemoryStore {
    fn create(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        self.rows.create(service, key, doc.clone())
    }

    fn load(&self, service: &str, key: &str) -> Result<PropertyDoc, StoreError> {
        self.rows
            .get(service, key, PropertyDoc::clone)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    fn save(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        self.rows.update(service, key, doc.clone())
    }

    fn destroy(&self, service: &str, key: &str) -> Result<(), StoreError> {
        self.rows.remove(service, key)
    }

    fn exists(&self, service: &str, key: &str) -> bool {
        self.rows.contains(service, key)
    }

    fn list(&self, service: &str) -> Vec<String> {
        self.rows.list(service)
    }

    fn query(&self, service: &str, path: &Path) -> Vec<String> {
        let mut out = Vec::new();
        self.rows.for_each(service, |key, doc| {
            if matches(doc, path) {
                out.push(key.to_string());
            }
        });
        out
    }

    fn backend_name(&self) -> &'static str {
        "memory"
    }
}

// ---------------------------------------------------------------------
// BlobStore
// ---------------------------------------------------------------------

/// Stores each document as serialized XML text — the paper's "binary,
/// unstructured data" strategy. Every load parses; every query parses
/// every row.
#[derive(Default)]
pub struct BlobStore {
    rows: ShardedRows<String>,
}

impl BlobStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ResourceStore for BlobStore {
    fn create(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        self.rows
            .create(service, key, doc.to_document(doc_root()).to_xml())
    }

    fn load(&self, service: &str, key: &str) -> Result<PropertyDoc, StoreError> {
        let blob = self
            .rows
            .get(service, key, String::clone)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        let parsed = wsrf_xml::parse(&blob)
            .unwrap_or_else(|e| panic!("blob store corrupted for {service}/{key}: {e}"));
        Ok(PropertyDoc::from_document(&parsed))
    }

    fn save(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        self.rows
            .update(service, key, doc.to_document(doc_root()).to_xml())
    }

    fn destroy(&self, service: &str, key: &str) -> Result<(), StoreError> {
        self.rows.remove(service, key)
    }

    fn exists(&self, service: &str, key: &str) -> bool {
        self.rows.contains(service, key)
    }

    fn list(&self, service: &str) -> Vec<String> {
        self.rows.list(service)
    }

    fn query(&self, service: &str, path: &Path) -> Vec<String> {
        // The expensive path the paper complains about: parse every row.
        let mut out = Vec::new();
        self.rows.for_each(service, |key, blob| {
            if wsrf_xml::parse(blob)
                .map(|doc| !path.select(&doc).is_empty())
                .unwrap_or(false)
            {
                out.push(key.to_string());
            }
        });
        out
    }

    fn backend_name(&self) -> &'static str {
        "blob"
    }
}

// ---------------------------------------------------------------------
// StructuredStore
// ---------------------------------------------------------------------

/// Column types supported by the relational-style store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Free text.
    Text,
    /// `f64`.
    Float,
    /// `i64`.
    Int,
}

/// One typed value in a structured row.
#[derive(Debug, Clone, PartialEq)]
enum ColumnValue {
    Text(String),
    Float(f64),
    Int(i64),
    Null,
}

/// Relational-style store: a service registers a fixed schema of
/// `(property name, type)` columns; rows are typed tuples. Queries on
/// simple `Property = value` shapes run against the typed columns with
/// no XML in sight; state that does not fit (multi-valued or nested
/// properties) is rejected with [`StoreError::Schema`] — exactly the
/// mismatch the paper describes between WS-Resource state and
/// traditional relational columns.
pub struct StructuredStore {
    schemas: RwLock<HashMap<String, Vec<(QName, ColumnType)>>>,
    rows: ShardedRows<Vec<ColumnValue>>,
}

impl Default for StructuredStore {
    fn default() -> Self {
        Self::new()
    }
}

impl StructuredStore {
    /// Empty store with no schemas.
    pub fn new() -> Self {
        StructuredStore {
            schemas: RwLock::new(HashMap::new()),
            rows: ShardedRows::default(),
        }
    }

    /// Declare the column schema for a service. Must be called before
    /// creating resources for it.
    pub fn define_schema(&self, service: &str, columns: Vec<(QName, ColumnType)>) {
        self.schemas.write().insert(service.to_string(), columns);
    }

    fn encode(&self, service: &str, doc: &PropertyDoc) -> Result<Vec<ColumnValue>, StoreError> {
        let schemas = self.schemas.read();
        let schema = schemas
            .get(service)
            .ok_or_else(|| StoreError::Schema(format!("no schema declared for '{service}'")))?;
        // Reject properties outside the schema.
        for name in doc.names() {
            if !schema.iter().any(|(n, _)| n == name) {
                return Err(StoreError::Schema(format!(
                    "property {name} is not a declared column"
                )));
            }
        }
        let mut row = Vec::with_capacity(schema.len());
        for (name, ty) in schema.iter() {
            let vals = doc.get(name);
            match vals.len() {
                0 => row.push(ColumnValue::Null),
                1 => {
                    let v = &vals[0];
                    if v.elements().next().is_some() {
                        return Err(StoreError::Schema(format!(
                            "property {name} has nested structure; columns are scalar"
                        )));
                    }
                    let text = v.text_content();
                    row.push(match ty {
                        ColumnType::Text => ColumnValue::Text(text),
                        ColumnType::Float => {
                            ColumnValue::Float(text.trim().parse().map_err(|_| {
                                StoreError::Schema(format!("property {name} is not a float"))
                            })?)
                        }
                        ColumnType::Int => ColumnValue::Int(text.trim().parse().map_err(|_| {
                            StoreError::Schema(format!("property {name} is not an int"))
                        })?),
                    });
                }
                n => {
                    return Err(StoreError::Schema(format!(
                        "property {name} has {n} values; columns hold one"
                    )))
                }
            }
        }
        Ok(row)
    }

    fn decode(&self, service: &str, row: &[ColumnValue]) -> PropertyDoc {
        let schemas = self.schemas.read();
        let schema = &schemas[service];
        let mut doc = PropertyDoc::new();
        for ((name, _), val) in schema.iter().zip(row) {
            match val {
                ColumnValue::Null => {}
                ColumnValue::Text(t) => doc.set_text(name.clone(), t.clone()),
                ColumnValue::Float(v) => doc.set_f64(name.clone(), *v),
                ColumnValue::Int(v) => doc.set_i64(name.clone(), *v),
            }
        }
        doc
    }

    /// Try to run a query directly against typed columns. Supports the
    /// shape `Prop[.='v']`-free simple paths produced by
    /// `column_query`: a single step naming a column with an optional
    /// child-text predicate. Returns `None` when the expression is too
    /// complex, in which case the caller falls back to materializing
    /// documents.
    fn fast_query(&self, service: &str, path: &Path) -> Option<Vec<String>> {
        // Shape 1: `/Root[Col='v']` — a root test with one child-text
        // equality predicate. This is the relational sweet spot: a
        // typed column scan with no documents materialized.
        if path.absolute && path.steps.len() == 1 {
            let step = &path.steps[0];
            if step.preds.len() == 1 {
                if let wsrf_xml::xpath::Pred::ChildTextEq(col, val) = &step.preds[0] {
                    let schemas = self.schemas.read();
                    let schema = schemas.get(service)?;
                    if schema.iter().any(|(n, _)| n.local == *col) {
                        drop(schemas);
                        return Some(self.column_eq(service, col, val));
                    }
                }
            }
        }
        // Recognize `/Properties/Name[Sub='v']`? No — columns are flat.
        // We accept: relative or absolute single-step `Name` or
        // two-step `/Properties/Name`, with at most one ChildTextEq
        // predicate that must refer to the column itself... keep it
        // simple: match `Name` step with optional `AttrEq`-free
        // position-free predicates of form [text]='v' is not
        // expressible in our xpath-lite, so we only accept a bare
        // column-existence test or `Name[.='v']`-like queries written
        // as `Name='v'` via `column_eq`. Anything else → None.
        let steps = &path.steps;
        let step = match steps.len() {
            1 => &steps[0],
            2 if path.absolute => &steps[1],
            _ => return None,
        };
        let col_name = match &step.test {
            wsrf_xml::xpath::NameTest::Local(l) => l.clone(),
            wsrf_xml::xpath::NameTest::Qualified(q) => q.local.clone(),
            wsrf_xml::xpath::NameTest::Any => return None,
        };
        if !step.preds.is_empty() {
            return None;
        }
        let schemas = self.schemas.read();
        let schema = schemas.get(service)?;
        let idx = schema.iter().position(|(n, _)| n.local == col_name)?;
        drop(schemas);
        let mut out = Vec::new();
        self.rows.for_each(service, |key, row| {
            if !matches!(row[idx], ColumnValue::Null) {
                out.push(key.to_string());
            }
        });
        Some(out)
    }

    /// Typed equality query: keys where column `name` equals `value`
    /// textually (the fast path the paper wanted from relational
    /// storage; used directly by the Node Info Service).
    pub fn column_eq(&self, service: &str, local_name: &str, value: &str) -> Vec<String> {
        let schemas = self.schemas.read();
        let Some(schema) = schemas.get(service) else {
            return Vec::new();
        };
        let Some(idx) = schema.iter().position(|(n, _)| n.local == local_name) else {
            return Vec::new();
        };
        drop(schemas);
        let mut out = Vec::new();
        self.rows.for_each(service, |key, row| {
            let hit = match &row[idx] {
                ColumnValue::Text(t) => t == value,
                ColumnValue::Float(v) => value.parse::<f64>().is_ok_and(|x| x == *v),
                ColumnValue::Int(v) => value.parse::<i64>().is_ok_and(|x| x == *v),
                ColumnValue::Null => false,
            };
            if hit {
                out.push(key.to_string());
            }
        });
        out
    }
}

impl ResourceStore for StructuredStore {
    fn create(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        let row = self.encode(service, doc)?;
        self.rows.create(service, key, row)
    }

    fn load(&self, service: &str, key: &str) -> Result<PropertyDoc, StoreError> {
        let row = self
            .rows
            .get(service, key, Vec::clone)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        Ok(self.decode(service, &row))
    }

    fn save(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        let row = self.encode(service, doc)?;
        self.rows.update(service, key, row)
    }

    fn destroy(&self, service: &str, key: &str) -> Result<(), StoreError> {
        self.rows.remove(service, key)
    }

    fn exists(&self, service: &str, key: &str) -> bool {
        self.rows.contains(service, key)
    }

    fn list(&self, service: &str) -> Vec<String> {
        self.rows.list(service)
    }

    fn query(&self, service: &str, path: &Path) -> Vec<String> {
        if let Some(fast) = self.fast_query(service, path) {
            return fast;
        }
        // Fallback: materialize documents (still no XML parse — decode
        // is column-to-element).
        let mut out = Vec::new();
        self.rows.for_each(service, |key, row| {
            if matches(&self.decode(service, row), path) {
                out.push(key.to_string());
            }
        });
        out
    }

    fn backend_name(&self) -> &'static str {
        "structured"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrf_xml::Element;

    const NS: &str = "urn:test";

    fn q(local: &str) -> QName {
        QName::new(NS, local)
    }

    fn job_doc(status: &str, cpu: f64) -> PropertyDoc {
        let mut d = PropertyDoc::new();
        d.set_text(q("Status"), status);
        d.set_f64(q("Cpu"), cpu);
        d
    }

    fn crud_suite(store: &dyn ResourceStore) {
        assert!(!store.exists("svc", "a"));
        store.create("svc", "a", &job_doc("Running", 1.0)).unwrap();
        assert!(store.exists("svc", "a"));
        assert_eq!(
            store.create("svc", "a", &job_doc("Running", 1.0)),
            Err(StoreError::AlreadyExists("a".into()))
        );
        let mut doc = store.load("svc", "a").unwrap();
        assert_eq!(doc.text(&q("Status")).unwrap(), "Running");
        doc.set_text(q("Status"), "Exited");
        store.save("svc", "a", &doc).unwrap();
        assert_eq!(
            store.load("svc", "a").unwrap().text(&q("Status")).unwrap(),
            "Exited"
        );
        store.create("svc", "b", &job_doc("Running", 2.0)).unwrap();
        let mut keys = store.list("svc");
        keys.sort();
        assert_eq!(keys, ["a", "b"]);
        assert!(store.list("other").is_empty());
        store.destroy("svc", "a").unwrap();
        assert_eq!(
            store.destroy("svc", "a"),
            Err(StoreError::NotFound("a".into()))
        );
        assert_eq!(
            store.load("svc", "a"),
            Err(StoreError::NotFound("a".into()))
        );
        assert_eq!(
            store.save("svc", "a", &doc),
            Err(StoreError::NotFound("a".into()))
        );
    }

    #[test]
    fn memory_crud() {
        crud_suite(&MemoryStore::new());
    }

    #[test]
    fn blob_crud() {
        crud_suite(&BlobStore::new());
    }

    #[test]
    fn structured_crud() {
        let s = StructuredStore::new();
        s.define_schema(
            "svc",
            vec![
                (q("Status"), ColumnType::Text),
                (q("Cpu"), ColumnType::Float),
            ],
        );
        crud_suite(&s);
    }

    fn query_suite(store: &dyn ResourceStore) {
        store.create("svc", "r1", &job_doc("Running", 1.0)).unwrap();
        store.create("svc", "r2", &job_doc("Exited", 2.0)).unwrap();
        store.create("svc", "r3", &job_doc("Running", 3.0)).unwrap();
        let p = Path::parse("//Status").unwrap();
        assert_eq!(store.query("svc", &p).len(), 3);
        let p = Path::parse("/Properties/Status[.='x']");
        // Our xpath-lite has no self-text predicate; use child-text on
        // the document instead.
        drop(p);
        let p = Path::parse("/Properties[Status='Running']").unwrap();
        let mut keys = store.query("svc", &p);
        keys.sort();
        assert_eq!(keys, ["r1", "r3"], "{}", store.backend_name());
    }

    #[test]
    fn memory_query() {
        query_suite(&MemoryStore::new());
    }

    #[test]
    fn blob_query() {
        query_suite(&BlobStore::new());
    }

    #[test]
    fn structured_query() {
        let s = StructuredStore::new();
        s.define_schema(
            "svc",
            vec![
                (q("Status"), ColumnType::Text),
                (q("Cpu"), ColumnType::Float),
            ],
        );
        query_suite(&s);
    }

    #[test]
    fn structured_rejects_unschema_state() {
        let s = StructuredStore::new();
        s.define_schema("svc", vec![(q("Status"), ColumnType::Text)]);
        // Undeclared property.
        assert!(matches!(
            s.create("svc", "k", &job_doc("Running", 1.0)),
            Err(StoreError::Schema(_))
        ));
        // Nested structure.
        let mut nested = PropertyDoc::new();
        nested.insert(
            q("Status"),
            Element::with_name(q("Status")).child(Element::local("inner")),
        );
        assert!(matches!(
            s.create("svc", "k", &nested),
            Err(StoreError::Schema(_))
        ));
        // Multi-valued property.
        let mut multi = PropertyDoc::new();
        multi.insert(q("Status"), Element::with_name(q("Status")).text("a"));
        multi.insert(q("Status"), Element::with_name(q("Status")).text("b"));
        assert!(matches!(
            s.create("svc", "k", &multi),
            Err(StoreError::Schema(_))
        ));
        // Type mismatch.
        let s2 = StructuredStore::new();
        s2.define_schema("svc", vec![(q("Cpu"), ColumnType::Float)]);
        let mut bad = PropertyDoc::new();
        bad.set_text(q("Cpu"), "fast");
        assert!(matches!(
            s2.create("svc", "k", &bad),
            Err(StoreError::Schema(_))
        ));
    }

    #[test]
    fn structured_allows_missing_columns_as_null() {
        let s = StructuredStore::new();
        s.define_schema(
            "svc",
            vec![
                (q("Status"), ColumnType::Text),
                (q("Exit"), ColumnType::Int),
            ],
        );
        let mut d = PropertyDoc::new();
        d.set_text(q("Status"), "Running");
        s.create("svc", "k", &d).unwrap();
        let back = s.load("svc", "k").unwrap();
        assert_eq!(back.text(&q("Status")).unwrap(), "Running");
        assert!(!back.contains(&q("Exit")));
    }

    #[test]
    fn structured_column_eq() {
        let s = StructuredStore::new();
        s.define_schema(
            "svc",
            vec![
                (q("Status"), ColumnType::Text),
                (q("Cpu"), ColumnType::Float),
            ],
        );
        s.create("svc", "r1", &job_doc("Running", 1.5)).unwrap();
        s.create("svc", "r2", &job_doc("Exited", 1.5)).unwrap();
        assert_eq!(s.column_eq("svc", "Status", "Running"), ["r1"]);
        let mut both = s.column_eq("svc", "Cpu", "1.5");
        both.sort();
        assert_eq!(both, ["r1", "r2"]);
        assert!(s.column_eq("svc", "Nope", "x").is_empty());
    }

    #[test]
    fn blob_survives_wide_unicode_content() {
        let store = BlobStore::new();
        let mut d = PropertyDoc::new();
        d.set_text(q("Path"), "C:\\données\\日本語 & <xml>");
        store.create("svc", "k", &d).unwrap();
        assert_eq!(store.load("svc", "k").unwrap(), d);
    }

    #[test]
    fn sharded_rows_span_multiple_shards() {
        // Sanity: keys really spread across partitions, and per-service
        // bookkeeping (list/len) still sees all of them.
        let store = MemoryStore::new();
        for i in 0..64 {
            store
                .create("svc", &format!("k{i}"), &job_doc("Running", i as f64))
                .unwrap();
        }
        let hit: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of("svc", &format!("k{i}"))).collect();
        assert!(hit.len() > 1, "64 keys all hashed to one shard");
        assert_eq!(store.len(), 64);
        assert_eq!(store.list("svc").len(), 64);
        for i in 0..64 {
            store.destroy("svc", &format!("k{i}")).unwrap();
        }
        assert!(store.is_empty());
    }
}
