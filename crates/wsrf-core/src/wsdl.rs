//! Service self-description — the WSDL analogue.
//!
//! In WSRF.NET "the schema for this [resource properties] document is
//! part of the web service's WSDL", and clients discover a service's
//! port types by fetching it. Full WSDL 1.1 is far outside this
//! reproduction's scope, but the *capability* it provides — ask a
//! service what operations and properties it supports, with zero
//! prior agreement — is load-bearing for the paper's interoperability
//! story. Every service built by the container therefore answers
//! [`DESCRIBE_ACTION`] with a `<ServiceDescription>` document listing
//! its address, resource-key property, operations (action URIs and
//! whether they are resource-scoped) and declared computed properties.

use wsrf_soap::ns;
use wsrf_xml::Element;

/// The action URI of the description operation (installed on every
/// container-built service).
pub const DESCRIBE_ACTION: &str = "urn:wsrf-grid/GetServiceDescription";

/// Namespace of description documents.
pub const DESC_NS: &str = "urn:wsrf-grid/description";

/// Build the description document (called by the container at build
/// time, when the full operation table is known).
pub(crate) fn describe(
    name: &str,
    address: &str,
    key_property: &str,
    actions: &mut [(String, bool)],
    computed: &[wsrf_xml::QName],
) -> Element {
    actions.sort();
    let mut doc = Element::new(DESC_NS, "ServiceDescription")
        .attr("name", name)
        .attr("address", address);
    doc.push_child(Element::new(DESC_NS, "ResourceKeyProperty").text(key_property));
    let mut ops = Element::new(DESC_NS, "Operations");
    for (action, resource_scoped) in actions.iter() {
        ops.push_child(
            Element::new(DESC_NS, "Operation")
                .attr("action", action)
                .attr(
                    "scope",
                    if *resource_scoped {
                        "resource"
                    } else {
                        "service"
                    },
                ),
        );
    }
    doc.push_child(ops);
    if !computed.is_empty() {
        let mut props = Element::new(DESC_NS, "ComputedProperties");
        for c in computed {
            props.push_child(Element::new(DESC_NS, "Property").text(c.to_string()));
        }
        doc.push_child(props);
    }
    doc
}

/// Decoded description, for clients.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDescription {
    /// Service name.
    pub name: String,
    /// Deployed address.
    pub address: String,
    /// Clark-form name of the resource-key reference property.
    pub key_property: String,
    /// `(action URI, resource-scoped?)` pairs, sorted.
    pub operations: Vec<(String, bool)>,
    /// Computed property names (Clark form).
    pub computed_properties: Vec<String>,
}

impl ServiceDescription {
    /// Decode a `<ServiceDescription>` document.
    pub fn from_element(e: &Element) -> Option<ServiceDescription> {
        Some(ServiceDescription {
            name: e.attr_value("name")?.to_string(),
            address: e.attr_value("address")?.to_string(),
            key_property: e
                .find(DESC_NS, "ResourceKeyProperty")
                .map(|k| k.text_content())
                .unwrap_or_default(),
            operations: e
                .find(DESC_NS, "Operations")?
                .elements()
                .filter_map(|o| {
                    Some((
                        o.attr_value("action")?.to_string(),
                        o.attr_value("scope") == Some("resource"),
                    ))
                })
                .collect(),
            computed_properties: e
                .find(DESC_NS, "ComputedProperties")
                .map(|p| p.elements().map(|c| c.text_content()).collect())
                .unwrap_or_default(),
        })
    }

    /// Does the service implement this action?
    pub fn supports(&self, action: &str) -> bool {
        self.operations.iter().any(|(a, _)| a == action)
    }

    /// Does it implement the standard WS-ResourceProperties port type?
    pub fn supports_resource_properties(&self) -> bool {
        self.supports(&crate::porttypes::wsrp_action("GetResourceProperty"))
    }

    /// Does it implement WS-ResourceLifetime?
    pub fn supports_lifetime(&self) -> bool {
        self.supports(&crate::porttypes::wsrl_action("Destroy"))
    }
}

/// Client helper: fetch and decode a service's description.
pub fn fetch_description(
    net: &wsrf_transport::InProcNetwork,
    address: &str,
) -> Result<ServiceDescription, wsrf_soap::SoapFault> {
    let mut env = wsrf_soap::Envelope::new(Element::new(DESC_NS, "GetServiceDescription"));
    wsrf_soap::MessageInfo::request(
        wsrf_soap::EndpointReference::service(address),
        DESCRIBE_ACTION,
    )
    .apply(&mut env);
    let resp = net
        .call(address, env)
        .map_err(|e| wsrf_soap::SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    ServiceDescription::from_element(&resp.body)
        .ok_or_else(|| wsrf_soap::SoapFault::server("malformed ServiceDescription"))
}

// `ns` is used by doc-links above; keep the import honest.
const _: &str = ns::WSRP;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ServiceBuilder;
    use crate::store::MemoryStore;
    use simclock::Clock;
    use std::sync::Arc;
    use wsrf_transport::InProcNetwork;
    use wsrf_xml::QName;

    #[test]
    fn services_self_describe() {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("Exec", "inproc://m1/Exec", Arc::new(MemoryStore::new()))
            .static_operation("Run", |_| Ok(Element::local("R")))
            .operation("Kill", |_| Ok(Element::local("K")))
            .computed_property(QName::new(ns::UVACG, "CpuTimeUsed"), |_, _| vec![])
            .build(clock, net.clone());
        svc.register(&net);

        let desc = fetch_description(&net, "inproc://m1/Exec").unwrap();
        assert_eq!(desc.name, "Exec");
        assert_eq!(desc.address, "inproc://m1/Exec");
        assert!(desc.key_property.ends_with("ExecKey"));
        assert!(desc.supports_resource_properties());
        assert!(desc.supports_lifetime());
        assert!(desc.supports(&crate::container::action_uri("Exec", "Run")));
        let (_, run_scoped) = desc
            .operations
            .iter()
            .find(|(a, _)| a.ends_with("/Run"))
            .unwrap();
        assert!(!run_scoped, "Run is a service-scoped factory");
        let (_, kill_scoped) = desc
            .operations
            .iter()
            .find(|(a, _)| a.ends_with("Exec/Kill"))
            .unwrap();
        assert!(kill_scoped);
        assert_eq!(desc.computed_properties.len(), 1);
        assert!(desc.computed_properties[0].contains("CpuTimeUsed"));
    }

    #[test]
    fn baseline_style_services_advertise_no_standard_port_types() {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("Gram", "inproc://hub/Gram", Arc::new(MemoryStore::new()))
            .without_standard_port_types()
            .without_lifetime()
            .static_operation("Submit", |_| Ok(Element::local("S")))
            .build(clock, net.clone());
        svc.register(&net);
        let desc = fetch_description(&net, "inproc://hub/Gram").unwrap();
        assert!(!desc.supports_resource_properties());
        assert!(!desc.supports_lifetime());
        assert!(desc.supports(&crate::container::action_uri("Gram", "Submit")));
    }
}
