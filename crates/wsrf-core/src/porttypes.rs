//! The standard WSRF port types a service imports — the analogue of
//! WSRF.NET's `[WSRFPortType(typeof(GetResourcePropertyPortType))]`
//! attribute. Installing them gives every service the canonical
//! state-access interface the paper argues for: "Because
//! WS-ResourceProperties defines a small set of interfaces with
//! standard behavior, it is possible to implement tooling to easily
//! use them."

use std::collections::HashMap;

use simclock::SimTime;
use wsrf_soap::{ns, BaseFault};
use wsrf_xml::xpath::Path;
use wsrf_xml::{Element, QName};

use crate::container::{insert_op, Ctx, OpAccess, OpKind};
use crate::faults;

/// The XPath 1.0 dialect URI required by WS-ResourceProperties.
pub const XPATH_DIALECT: &str = "http://www.w3.org/TR/1999/REC-xpath-19991116";

type Ops = HashMap<String, crate::container::Op>;

/// Action URI for a standard WS-ResourceProperties operation.
pub fn wsrp_action(op: &str) -> String {
    format!("{}/{}", ns::WSRP, op)
}

/// Action URI for a standard WS-ResourceLifetime operation.
pub fn wsrl_action(op: &str) -> String {
    format!("{}/{}", ns::WSRL, op)
}

/// Parse a property name written either as Clark notation or as a
/// bare local name.
fn parse_property_name(text: &str) -> QName {
    QName::from_clark(text.trim())
}

fn get_one(ctx: &mut Ctx<'_>, name: &QName) -> Result<Vec<Element>, BaseFault> {
    let core = ctx.core.clone();
    let doc = ctx.resource_mut()?;
    let vals = core.property_values(doc, name);
    if vals.is_empty() && !doc.contains(name) && !core.has_computed(name) {
        return Err(faults::invalid_property(&name.to_string()));
    }
    Ok(vals)
}

/// Install the WS-ResourceProperties operations into a service's
/// operation table.
pub(crate) fn install_resource_properties(ops: &mut Ops) {
    // GetResourceProperty: body text is the property QName.
    insert_op(
        ops,
        wsrp_action("GetResourceProperty"),
        OpKind::Resource,
        OpAccess::Read,
        Box::new(|ctx| {
            // `BodyRef::text` reads the body text straight off the wire
            // scan on the lazy path — the hottest WS-RP read answers
            // without ever materializing a body DOM.
            let name = parse_property_name(&ctx.body.text());
            let vals = get_one(ctx, &name)?;
            Ok(Element::new(ns::WSRP, "GetResourcePropertyResponse").children(vals))
        }),
    );

    // GetMultipleResourceProperties: <ResourceProperty> children.
    insert_op(
        ops,
        wsrp_action("GetMultipleResourceProperties"),
        OpKind::Resource,
        OpAccess::Read,
        Box::new(|ctx| {
            let names: Vec<QName> = ctx
                .body
                .find_all(ns::WSRP, "ResourceProperty")
                .map(|e| parse_property_name(&e.text_content()))
                .collect();
            if names.is_empty() {
                return Err(faults::bad_request(
                    "GetMultipleResourceProperties requires at least one ResourceProperty",
                ));
            }
            let mut resp = Element::new(ns::WSRP, "GetMultipleResourcePropertiesResponse");
            for name in names {
                for v in get_one(ctx, &name)? {
                    resp.push_child(v);
                }
            }
            Ok(resp)
        }),
    );

    // GetResourcePropertyDocument: the whole view.
    insert_op(
        ops,
        wsrp_action("GetResourcePropertyDocument"),
        OpKind::Resource,
        OpAccess::Read,
        Box::new(|ctx| {
            let core = ctx.core.clone();
            let doc = ctx.resource_mut()?;
            Ok(
                Element::new(ns::WSRP, "GetResourcePropertyDocumentResponse")
                    .child(core.property_view(doc)),
            )
        }),
    );

    // QueryResourceProperties: XPath against the property document.
    insert_op(
        ops,
        wsrp_action("QueryResourceProperties"),
        OpKind::Resource,
        OpAccess::Read,
        Box::new(|ctx| {
            let expr_el = ctx
                .body
                .find(ns::WSRP, "QueryExpression")
                .ok_or_else(|| faults::invalid_query("missing QueryExpression"))?;
            let dialect = expr_el.attr_value("Dialect").unwrap_or(XPATH_DIALECT);
            if dialect != XPATH_DIALECT {
                return Err(faults::invalid_query(&format!(
                    "unsupported dialect '{dialect}'"
                )));
            }
            let path = Path::parse(&expr_el.text_content())
                .map_err(|e| faults::invalid_query(&e.to_string()))?;
            let core = ctx.core.clone();
            let doc = ctx.resource_mut()?;
            let view = core.property_view(doc);
            let matches: Vec<Element> = path.select(&view).into_iter().cloned().collect();
            Ok(Element::new(ns::WSRP, "QueryResourcePropertiesResponse").children(matches))
        }),
    );

    // SetResourceProperties: Insert / Update / Delete components.
    insert_op(
        ops,
        wsrp_action("SetResourceProperties"),
        OpKind::Resource,
        OpAccess::Write,
        Box::new(|ctx| {
            // Collect the component edits first (ctx.body borrow), then
            // apply them to the resource.
            enum Edit {
                Insert(Element),
                Update(QName, Vec<Element>),
                Delete(QName),
            }
            let mut edits = Vec::new();
            for comp in ctx.body.elements() {
                match comp.name.local.as_str() {
                    "Insert" => {
                        for v in comp.elements() {
                            edits.push(Edit::Insert(v.clone()));
                        }
                    }
                    "Update" => {
                        let mut by_name: Vec<(QName, Vec<Element>)> = Vec::new();
                        for v in comp.elements() {
                            match by_name.iter_mut().find(|(n, _)| *n == v.name) {
                                Some((_, vs)) => vs.push(v.clone()),
                                None => by_name.push((v.name.clone(), vec![v.clone()])),
                            }
                        }
                        for (n, vs) in by_name {
                            edits.push(Edit::Update(n, vs));
                        }
                    }
                    "Delete" => {
                        let name = comp.attr_value("resourceProperty").ok_or_else(|| {
                            faults::bad_request("Delete requires resourceProperty attribute")
                        })?;
                        edits.push(Edit::Delete(parse_property_name(name)));
                    }
                    other => {
                        return Err(faults::bad_request(&format!(
                            "unknown SetResourceProperties component '{other}'"
                        )))
                    }
                }
            }
            let doc = ctx.resource_mut()?;
            for e in edits {
                match e {
                    Edit::Insert(v) => doc.insert(v.name.clone(), v),
                    Edit::Update(n, vs) => doc.update(n, vs),
                    Edit::Delete(n) => {
                        // Exact name first, then (like Get*) fall back
                        // to local-name matching.
                        if !doc.delete(&n) && n.ns.is_none() {
                            doc.delete_local(&n.local);
                        }
                    }
                }
            }
            Ok(Element::new(ns::WSRP, "SetResourcePropertiesResponse"))
        }),
    );
}

/// Install the WS-ResourceLifetime operations.
pub(crate) fn install_lifetime(ops: &mut Ops) {
    // Immediate destruction.
    insert_op(
        ops,
        wsrl_action("Destroy"),
        OpKind::Resource,
        OpAccess::Write,
        Box::new(|ctx| {
            let key = ctx.key()?.to_string();
            ctx.core.destroy_resource(&key)?;
            Ok(Element::new(ns::WSRL, "DestroyResponse"))
        }),
    );

    // Scheduled destruction. Body carries
    // <RequestedTerminationTime>seconds</> (virtual seconds since the
    // grid epoch) or an empty element meaning "never".
    insert_op(
        ops,
        wsrl_action("SetTerminationTime"),
        OpKind::Resource,
        OpAccess::Write,
        Box::new(|ctx| {
            let key = ctx.key()?.to_string();
            let req = ctx
                .body
                .find(ns::WSRL, "RequestedTerminationTime")
                .ok_or_else(|| faults::bad_request("missing RequestedTerminationTime"))?;
            let text = req.text_content();
            let when = if text.trim().is_empty() {
                None
            } else {
                let secs: f64 = text
                    .trim()
                    .parse()
                    .map_err(|_| faults::bad_request("RequestedTerminationTime must be seconds"))?;
                Some(SimTime::from_secs_f64(secs))
            };
            ctx.core.set_termination_time(&key, when);
            // Record it as a resource property too, so it is queryable.
            let doc = ctx.resource_mut()?;
            match when {
                Some(t) => doc.set_f64(QName::new(ns::WSRL, "TerminationTime"), t.as_secs_f64()),
                None => {
                    doc.delete(&QName::new(ns::WSRL, "TerminationTime"));
                }
            }
            let now = ctx.core.clock.now().as_secs_f64();
            Ok(Element::new(ns::WSRL, "SetTerminationTimeResponse")
                .child(Element::new(ns::WSRL, "NewTerminationTime").text(text.trim()))
                .child(Element::new(ns::WSRL, "CurrentTime").text(format!("{now}"))))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Service, ServiceBuilder};
    use crate::properties::PropertyDoc;
    use crate::store::MemoryStore;
    use simclock::Clock;
    use std::sync::Arc;
    use std::time::Duration;
    use wsrf_soap::{EndpointReference, Envelope, MessageInfo};
    use wsrf_transport::InProcNetwork;

    const U: &str = ns::UVACG;

    fn q(local: &str) -> QName {
        QName::new(U, local)
    }

    struct Fixture {
        svc: Arc<Service>,
        epr: EndpointReference,
        clock: Clock,
    }

    fn fixture() -> Fixture {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("Job", "inproc://m1/Job", Arc::new(MemoryStore::new()))
            .computed_property(q("Uptime"), |_, now| {
                vec![Element::new(U, "Uptime").text(format!("{}", now.as_secs_f64()))]
            })
            .build(clock.clone(), net);
        let mut doc = PropertyDoc::new();
        doc.set_text(q("Status"), "Running");
        doc.set_f64(q("CpuTime"), 1.5);
        let epr = svc.core().create_resource_with_key("job-1", doc).unwrap();
        Fixture { svc, epr, clock }
    }

    fn invoke(f: &Fixture, action: String, body: Element) -> Envelope {
        let mut env = Envelope::new(body);
        MessageInfo::request(f.epr.clone(), action).apply(&mut env);
        f.svc.dispatch(env)
    }

    #[test]
    fn get_resource_property() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrp_action("GetResourceProperty"),
            Element::new(ns::WSRP, "GetResourceProperty").text(format!("{{{U}}}Status")),
        );
        assert!(!resp.is_fault());
        assert_eq!(resp.body.text_content(), "Running");
    }

    #[test]
    fn get_resource_property_by_local_name() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrp_action("GetResourceProperty"),
            Element::new(ns::WSRP, "GetResourceProperty").text("CpuTime"),
        );
        assert_eq!(resp.body.text_content(), "1.5");
    }

    #[test]
    fn get_unknown_property_faults() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrp_action("GetResourceProperty"),
            Element::new(ns::WSRP, "GetResourceProperty").text("Nope"),
        );
        assert_eq!(
            resp.fault().unwrap().error_code(),
            Some("wsrp:InvalidResourcePropertyQName")
        );
    }

    #[test]
    fn get_multiple() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrp_action("GetMultipleResourceProperties"),
            Element::new(ns::WSRP, "GetMultipleResourceProperties")
                .child(Element::new(ns::WSRP, "ResourceProperty").text("Status"))
                .child(Element::new(ns::WSRP, "ResourceProperty").text("CpuTime")),
        );
        assert_eq!(resp.body.element_count(), 2);
    }

    #[test]
    fn get_multiple_requires_names() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrp_action("GetMultipleResourceProperties"),
            Element::new(ns::WSRP, "GetMultipleResourceProperties"),
        );
        assert!(resp.is_fault());
    }

    #[test]
    fn computed_property_visible_through_get_and_document() {
        let f = fixture();
        f.clock.advance(Duration::from_secs(30));
        let resp = invoke(
            &f,
            wsrp_action("GetResourceProperty"),
            Element::new(ns::WSRP, "GetResourceProperty").text("Uptime"),
        );
        assert_eq!(resp.body.text_content(), "30");

        let resp = invoke(
            &f,
            wsrp_action("GetResourcePropertyDocument"),
            Element::new(ns::WSRP, "GetResourcePropertyDocument"),
        );
        let doc = resp.body.elements().next().unwrap();
        let names: Vec<&str> = doc.elements().map(|e| e.name.local.as_str()).collect();
        assert_eq!(names, ["Status", "CpuTime", "Uptime"]);
    }

    #[test]
    fn query_resource_properties() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrp_action("QueryResourceProperties"),
            Element::new(ns::WSRP, "QueryResourceProperties").child(
                Element::new(ns::WSRP, "QueryExpression")
                    .attr("Dialect", XPATH_DIALECT)
                    .text("/ResourcePropertyDocument[Status='Running']/CpuTime"),
            ),
        );
        assert!(!resp.is_fault(), "{:?}", resp.fault());
        assert_eq!(resp.body.text_content(), "1.5");
    }

    #[test]
    fn query_rejects_unknown_dialect() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrp_action("QueryResourceProperties"),
            Element::new(ns::WSRP, "QueryResourceProperties").child(
                Element::new(ns::WSRP, "QueryExpression")
                    .attr("Dialect", "urn:xquery")
                    .text("/x"),
            ),
        );
        assert_eq!(
            resp.fault().unwrap().error_code(),
            Some("wsrp:InvalidQueryExpression")
        );
    }

    #[test]
    fn set_resource_properties_insert_update_delete() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrp_action("SetResourceProperties"),
            Element::new(ns::WSRP, "SetResourceProperties")
                .child(
                    Element::new(ns::WSRP, "Insert")
                        .child(Element::new(U, "Tag").text("alpha"))
                        .child(Element::new(U, "Tag").text("beta")),
                )
                .child(
                    Element::new(ns::WSRP, "Update")
                        .child(Element::new(U, "Status").text("Exited")),
                )
                .child(
                    Element::new(ns::WSRP, "Delete")
                        .attr("resourceProperty", format!("{{{U}}}CpuTime")),
                ),
        );
        assert!(!resp.is_fault(), "{:?}", resp.fault());
        let doc = f.svc.core().store.load("Job", "job-1").unwrap();
        assert_eq!(doc.get(&q("Tag")).len(), 2);
        assert_eq!(doc.text(&q("Status")).unwrap(), "Exited");
        assert!(!doc.contains(&q("CpuTime")));
    }

    #[test]
    fn destroy_removes_resource() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrl_action("Destroy"),
            Element::new(ns::WSRL, "Destroy"),
        );
        assert!(!resp.is_fault());
        assert!(!f.svc.core().store.exists("Job", "job-1"));
        // Second destroy faults.
        let resp = invoke(
            &f,
            wsrl_action("Destroy"),
            Element::new(ns::WSRL, "Destroy"),
        );
        assert_eq!(
            resp.fault().unwrap().error_code(),
            Some("wsrf:NoSuchResource")
        );
    }

    #[test]
    fn set_termination_time_lifecycle() {
        let f = fixture();
        let resp = invoke(
            &f,
            wsrl_action("SetTerminationTime"),
            Element::new(ns::WSRL, "SetTerminationTime")
                .child(Element::new(ns::WSRL, "RequestedTerminationTime").text("60")),
        );
        assert!(!resp.is_fault(), "{:?}", resp.fault());
        assert!(resp.body.find(ns::WSRL, "CurrentTime").is_some());
        // TerminationTime became a queryable property.
        let doc = f.svc.core().store.load("Job", "job-1").unwrap();
        assert_eq!(
            doc.f64(&QName::new(ns::WSRL, "TerminationTime")).unwrap(),
            60.0
        );
        f.clock.advance(Duration::from_secs(61));
        assert!(!f.svc.core().store.exists("Job", "job-1"));
    }

    #[test]
    fn empty_termination_time_cancels() {
        let f = fixture();
        invoke(
            &f,
            wsrl_action("SetTerminationTime"),
            Element::new(ns::WSRL, "SetTerminationTime")
                .child(Element::new(ns::WSRL, "RequestedTerminationTime").text("60")),
        );
        invoke(
            &f,
            wsrl_action("SetTerminationTime"),
            Element::new(ns::WSRL, "SetTerminationTime")
                .child(Element::new(ns::WSRL, "RequestedTerminationTime")),
        );
        f.clock.advance(Duration::from_secs(120));
        assert!(f.svc.core().store.exists("Job", "job-1"));
    }
}
