//! Canonical WS-BaseFaults used across the framework and the testbed.

use wsrf_soap::BaseFault;

/// The EPR named no resource, or the resource has been destroyed.
pub fn no_such_resource(key: &str) -> BaseFault {
    BaseFault::new(
        "wsrf:NoSuchResource",
        format!("no WS-Resource with key '{key}'"),
    )
}

/// The invocation's action URI matches no operation of the service.
pub fn no_such_operation(action: &str) -> BaseFault {
    BaseFault::new(
        "wsrf:NoSuchOperation",
        format!("no operation for action '{action}'"),
    )
}

/// The message omitted the resource-identifying reference properties.
pub fn missing_resource_key(service: &str) -> BaseFault {
    BaseFault::new(
        "wsrf:MissingResourceKey",
        format!("invocation of '{service}' carries no resource key in its headers"),
    )
}

/// A `GetResourceProperty` named an unknown property.
pub fn invalid_property(name: &str) -> BaseFault {
    BaseFault::new(
        "wsrp:InvalidResourcePropertyQName",
        format!("resource has no property named '{name}'"),
    )
}

/// A query expression failed to parse or used an unsupported dialect.
pub fn invalid_query(detail: &str) -> BaseFault {
    BaseFault::new("wsrp:InvalidQueryExpression", detail.to_string())
}

/// The request body was malformed.
pub fn bad_request(detail: &str) -> BaseFault {
    BaseFault::new("wsrf:BadRequest", detail.to_string())
}

/// A storage backend rejected an operation.
pub fn storage(detail: &str) -> BaseFault {
    BaseFault::new("wsrf:StorageFault", detail.to_string())
}

/// Convert a store error into the corresponding canonical fault.
pub fn from_store(e: crate::store::StoreError) -> BaseFault {
    match e {
        crate::store::StoreError::NotFound(k) => no_such_resource(&k),
        other => storage(&other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreError;

    #[test]
    fn store_error_mapping() {
        assert_eq!(
            from_store(StoreError::NotFound("k".into())).error_code,
            "wsrf:NoSuchResource"
        );
        assert_eq!(
            from_store(StoreError::Schema("bad".into())).error_code,
            "wsrf:StorageFault"
        );
    }

    #[test]
    fn fault_codes_are_stable() {
        assert_eq!(
            no_such_operation("urn:x").error_code,
            "wsrf:NoSuchOperation"
        );
        assert_eq!(
            invalid_property("P").error_code,
            "wsrp:InvalidResourcePropertyQName"
        );
    }
}
