//! Canonical WS-BaseFaults used across the framework and the testbed.

use wsrf_soap::{BaseFault, EndpointReference};

/// The EPR named no resource, or the resource has been destroyed.
pub fn no_such_resource(key: &str) -> BaseFault {
    BaseFault::new(
        "wsrf:NoSuchResource",
        format!("no WS-Resource with key '{key}'"),
    )
}

/// The invocation's action URI matches no operation of the service.
pub fn no_such_operation(action: &str) -> BaseFault {
    BaseFault::new(
        "wsrf:NoSuchOperation",
        format!("no operation for action '{action}'"),
    )
}

/// The message omitted the resource-identifying reference properties.
pub fn missing_resource_key(service: &str) -> BaseFault {
    BaseFault::new(
        "wsrf:MissingResourceKey",
        format!("invocation of '{service}' carries no resource key in its headers"),
    )
}

/// A `GetResourceProperty` named an unknown property.
pub fn invalid_property(name: &str) -> BaseFault {
    BaseFault::new(
        "wsrp:InvalidResourcePropertyQName",
        format!("resource has no property named '{name}'"),
    )
}

/// A query expression failed to parse or used an unsupported dialect.
pub fn invalid_query(detail: &str) -> BaseFault {
    BaseFault::new("wsrp:InvalidQueryExpression", detail.to_string())
}

/// The request body was malformed.
pub fn bad_request(detail: &str) -> BaseFault {
    BaseFault::new("wsrf:BadRequest", detail.to_string())
}

/// Extract the resource key from an EPR, faulting — instead of
/// panicking — when the EPR carries no reference properties (a plain
/// service EPR). `what` names the EPR in the fault detail.
pub fn require_key(epr: &EndpointReference, what: &str) -> Result<String, BaseFault> {
    epr.resource_key()
        .map(str::to_string)
        .ok_or_else(|| bad_request(&format!("{what} EPR carries no resource key")))
}

/// A storage backend rejected an operation.
pub fn storage(detail: &str) -> BaseFault {
    BaseFault::new("wsrf:StorageFault", detail.to_string())
}

/// Convert a store error into the corresponding canonical fault.
pub fn from_store(e: crate::store::StoreError) -> BaseFault {
    match e {
        crate::store::StoreError::NotFound(k) => no_such_resource(&k),
        other => storage(&other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreError;

    #[test]
    fn store_error_mapping() {
        assert_eq!(
            from_store(StoreError::NotFound("k".into())).error_code,
            "wsrf:NoSuchResource"
        );
        assert_eq!(
            from_store(StoreError::Schema("bad".into())).error_code,
            "wsrf:StorageFault"
        );
    }

    #[test]
    fn require_key_faults_on_keyless_epr() {
        let keyless = EndpointReference::service("http://h/Svc");
        let fault = require_key(&keyless, "entry").unwrap_err();
        assert_eq!(fault.error_code, "wsrf:BadRequest");
        assert!(fault.description.contains("carries no resource key"));
        let keyed = EndpointReference::resource("http://h/Svc", "{u}Key", "k-1");
        assert_eq!(require_key(&keyed, "entry").unwrap(), "k-1");
    }

    #[test]
    fn fault_codes_are_stable() {
        assert_eq!(
            no_such_operation("urn:x").error_code,
            "wsrf:NoSuchOperation"
        );
        assert_eq!(
            invalid_property("P").error_code,
            "wsrp:InvalidResourcePropertyQName"
        );
    }
}
