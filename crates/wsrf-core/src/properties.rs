//! The resource properties document.
//!
//! WS-ResourceProperties models the client-visible state of a
//! WS-Resource as an XML document whose top-level children are the
//! individual *resource properties*; a property may have zero, one or
//! many element values. [`PropertyDoc`] is that document in decoded
//! form, preserving declaration order (the order is part of the
//! document's schema).

use wsrf_xml::{Element, QName};

/// The decoded resource properties document of one WS-Resource.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PropertyDoc {
    entries: Vec<(QName, Vec<Element>)>,
}

impl PropertyDoc {
    /// An empty document.
    pub fn new() -> Self {
        PropertyDoc::default()
    }

    /// Number of distinct properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no properties exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Property names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &QName> {
        self.entries.iter().map(|(n, _)| n)
    }

    /// All element values of a property (empty slice if absent).
    pub fn get(&self, name: &QName) -> &[Element] {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Find by local name regardless of namespace (convenient for the
    /// testbed services which use one namespace throughout).
    pub fn get_local(&self, local: &str) -> &[Element] {
        self.entries
            .iter()
            .find(|(n, _)| n.local == local)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Text content of the first value of a property.
    pub fn text(&self, name: &QName) -> Option<String> {
        self.get(name).first().map(Element::text_content)
    }

    /// Text content by local name.
    pub fn text_local(&self, local: &str) -> Option<String> {
        self.get_local(local).first().map(Element::text_content)
    }

    /// Parse the first value's text as `f64`.
    pub fn f64(&self, name: &QName) -> Option<f64> {
        self.text(name)?.trim().parse().ok()
    }

    /// Parse the first value's text as `i64`.
    pub fn i64(&self, name: &QName) -> Option<i64> {
        self.text(name)?.trim().parse().ok()
    }

    /// True if the property exists (even with zero values).
    pub fn contains(&self, name: &QName) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Replace all values of `name` with a single text-valued element
    /// (creating the property if needed). This is the workhorse for
    /// simple scalar properties.
    pub fn set_text(&mut self, name: QName, value: impl Into<String>) {
        let el = Element::with_name(name.clone()).text(value);
        self.update(name, vec![el]);
    }

    /// Set a numeric property.
    pub fn set_f64(&mut self, name: QName, value: f64) {
        self.set_text(name, format!("{value}"));
    }

    /// Set an integer property.
    pub fn set_i64(&mut self, name: QName, value: i64) {
        self.set_text(name, value.to_string());
    }

    /// Append one more element value to a property (creating it if
    /// needed) — WSRF's `Insert`.
    pub fn insert(&mut self, name: QName, value: Element) {
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some((_, vals)) => vals.push(value),
            None => self.entries.push((name, vec![value])),
        }
    }

    /// Replace all values of a property — WSRF's `Update`.
    pub fn update(&mut self, name: QName, values: Vec<Element>) {
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some((_, vals)) => *vals = values,
            None => self.entries.push((name, values)),
        }
    }

    /// Remove a property entirely — WSRF's `Delete`. Returns true if
    /// it existed.
    pub fn delete(&mut self, name: &QName) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| n != name);
        before != self.entries.len()
    }

    /// Remove a property by local name regardless of namespace.
    pub fn delete_local(&mut self, local: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| n.local != local);
        before != self.entries.len()
    }

    /// Remove one element value matching a predicate from a property's
    /// value list (used e.g. by service groups removing one entry).
    pub fn remove_value(&mut self, name: &QName, pred: impl Fn(&Element) -> bool) -> bool {
        if let Some((_, vals)) = self.entries.iter_mut().find(|(n, _)| n == name) {
            if let Some(idx) = vals.iter().position(pred) {
                vals.remove(idx);
                return true;
            }
        }
        false
    }

    /// Render the full resource properties document with the given
    /// root element name.
    pub fn to_document(&self, root: QName) -> Element {
        let mut doc = Element::with_name(root);
        for (_, vals) in &self.entries {
            for v in vals {
                doc.push_child(v.clone());
            }
        }
        doc
    }

    /// Decode a document produced by [`Self::to_document`] (or any
    /// element whose children are property values).
    pub fn from_document(doc: &Element) -> Self {
        let mut pd = PropertyDoc::new();
        for child in doc.elements() {
            pd.insert(child.name.clone(), child.clone());
        }
        pd
    }

    /// Estimated serialized size (used by stores for metrics); cheap —
    /// no serialization, see [`Element::approx_size`].
    pub fn approx_bytes(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|(_, v)| v.iter())
            .map(|e| e.approx_size())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NS: &str = "urn:test";

    fn q(local: &str) -> QName {
        QName::new(NS, local)
    }

    #[test]
    fn set_and_get_scalars() {
        let mut d = PropertyDoc::new();
        d.set_text(q("Status"), "Running");
        d.set_f64(q("Cpu"), 1.25);
        d.set_i64(q("Pid"), 42);
        assert_eq!(d.text(&q("Status")).unwrap(), "Running");
        assert_eq!(d.f64(&q("Cpu")).unwrap(), 1.25);
        assert_eq!(d.i64(&q("Pid")).unwrap(), 42);
        assert_eq!(d.len(), 3);
        assert!(d.contains(&q("Status")));
        assert!(!d.contains(&q("Nope")));
    }

    #[test]
    fn set_text_replaces_existing() {
        let mut d = PropertyDoc::new();
        d.set_text(q("Status"), "Running");
        d.set_text(q("Status"), "Exited");
        assert_eq!(d.get(&q("Status")).len(), 1);
        assert_eq!(d.text(&q("Status")).unwrap(), "Exited");
    }

    #[test]
    fn insert_accumulates_values() {
        let mut d = PropertyDoc::new();
        d.insert(q("Entry"), Element::with_name(q("Entry")).attr("id", "1"));
        d.insert(q("Entry"), Element::with_name(q("Entry")).attr("id", "2"));
        assert_eq!(d.get(&q("Entry")).len(), 2);
        assert_eq!(d.len(), 1, "one property, two values");
    }

    #[test]
    fn delete_and_remove_value() {
        let mut d = PropertyDoc::new();
        d.insert(q("Entry"), Element::with_name(q("Entry")).attr("id", "1"));
        d.insert(q("Entry"), Element::with_name(q("Entry")).attr("id", "2"));
        assert!(d.remove_value(&q("Entry"), |e| e.attr_value("id") == Some("1")));
        assert_eq!(d.get(&q("Entry")).len(), 1);
        assert!(!d.remove_value(&q("Entry"), |e| e.attr_value("id") == Some("9")));
        assert!(d.delete(&q("Entry")));
        assert!(!d.delete(&q("Entry")));
        assert!(d.is_empty());
    }

    #[test]
    fn document_roundtrip_preserves_order_and_values() {
        let mut d = PropertyDoc::new();
        d.set_text(q("B"), "2");
        d.set_text(q("A"), "1");
        d.insert(
            q("B2"),
            Element::with_name(q("B2")).child(Element::local("inner").text("x")),
        );
        let doc = d.to_document(q("Props"));
        let names: Vec<&str> = doc.elements().map(|e| e.name.local.as_str()).collect();
        assert_eq!(names, ["B", "A", "B2"]);
        let back = PropertyDoc::from_document(&doc);
        assert_eq!(back, d);
    }

    #[test]
    fn local_name_lookup() {
        let mut d = PropertyDoc::new();
        d.set_text(QName::new("urn:other", "Path"), "/tmp/x");
        assert_eq!(d.text_local("Path").unwrap(), "/tmp/x");
        assert!(d.get_local("Missing").is_empty());
    }

    #[test]
    fn numeric_parse_failures_are_none() {
        let mut d = PropertyDoc::new();
        d.set_text(q("X"), "not-a-number");
        assert_eq!(d.f64(&q("X")), None);
        assert_eq!(d.i64(&q("X")), None);
        assert_eq!(d.f64(&q("Absent")), None);
    }
}
