//! # wsrf-core
//!
//! The WSRF framework itself — this workspace's analogue of WSRF.NET.
//!
//! WSRF defines "stateful resources" and canonical patterns for
//! discovering, querying and manipulating them through web services.
//! The paper evaluates those abstractions by building a remote job
//! execution testbed on WSRF.NET; this crate reproduces the toolkit
//! layer the testbed stands on:
//!
//! * [`PropertyDoc`] — the resource properties document: the typed,
//!   ordered bag of state a WS-Resource exposes,
//! * [`store`] — pluggable persistence backends mirroring WSRF.NET's
//!   "database-backed system for accessing state in service code"
//!   ([`store::MemoryStore`], the relational-style
//!   [`store::StructuredStore`], and [`store::BlobStore`] which stores
//!   serialized XML and must reparse to query — the exact trade-off
//!   §5 of the paper discusses),
//! * [`container`] — the Figure 1 dispatch pipeline: resolve the EPR
//!   in the SOAP headers → load the resource's state → invoke the
//!   method → save the state → serialize the response,
//! * [`porttypes`] — the standard WS-ResourceProperties and
//!   WS-ResourceLifetime port types a service imports (the analogue of
//!   WSRF.NET's `[WSRFPortType]` attribute),
//! * [`servicegroup`] — WS-ServiceGroup, used by the testbed's Node
//!   Info Service whose members are processors.
//!
//! The programming model mirrors Figure 2 of the paper: a service
//! author declares resource state, resource properties (including
//! computed ones, like the C# property getters), imports standard port
//! types, and writes plain handlers that receive their resource's
//! state as an in-memory document.

// WS-BaseFaults carries timestamps, originator EPRs and cause chains
// by design, so fault values are large; handlers are not hot paths and
// faults are exceptional, so we keep them by value rather than boxing
// every error site.
#![allow(clippy::result_large_err)]

pub mod container;
pub mod faults;
pub mod porttypes;
pub mod properties;
pub mod proxy;
pub mod servicegroup;
pub mod store;
pub mod wal;
pub mod wsdl;

pub use container::{Ctx, Service, ServiceBuilder, ServiceCore};
pub use properties::PropertyDoc;
pub use proxy::ResourceProxy;
pub use store::{BlobStore, MemoryStore, ResourceStore, StoreError, StructuredStore};
pub use wal::DurableStore;
