//! The service container: the Figure 1 dispatch pipeline.
//!
//! WSRF.NET wraps an author's web service in a generated "wrapper"
//! service; on each invocation the wrapper (1) reads the
//! EndpointReference in the SOAP headers, (2) resolves the named
//! WS-Resource by loading its state values from the database, (3)
//! invokes either an author-written operation or a standard WSRF port
//! type, (4) saves any changed state back, and (5) serializes the
//! result. [`Service::handle`] is that pipeline; [`ServiceBuilder`] is
//! the analogue of the `[Resource]` / `[ResourceProperty]` /
//! `[WSRFPortType]` attribute programming model of Figure 2.

use std::cell::OnceCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use simclock::{Clock, SimTime, TimerId};
use wsrf_obs::{
    Counter, EventKind, EventLog, Histogram, MetricsRegistry, Severity, SloHandle, SpanContext,
    Timer, Tracer,
};
use wsrf_soap::{
    ns, BaseFault, EndpointReference, Envelope, LazyEnvelope, MessageInfo, SoapFault, TraceContext,
};
use wsrf_transport::{Endpoint, InProcNetwork};
use wsrf_xml::{Element, QName};

use crate::faults;
use crate::properties::PropertyDoc;
use crate::store::ResourceStore;

/// A computed (derived) resource property — the analogue of a C#
/// property getter marked `[ResourceProperty]` in Figure 2. It is
/// evaluated on demand against the stored state and merged into the
/// property views returned by the standard port types.
pub type ComputedProperty = Box<dyn Fn(&PropertyDoc, SimTime) -> Vec<Element> + Send + Sync>;

/// Handler for one operation. Receives an invocation context and
/// returns the response body element (or a fault).
pub type OpHandler = Box<dyn Fn(&mut Ctx<'_>) -> Result<Element, BaseFault> + Send + Sync>;

/// When the container writes resource state back after a handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SavePolicy {
    /// Save after every resource-scoped invocation, like WSRF.NET
    /// ("any changes to those values will be saved back to the
    /// database" — and unchanged ones too). The default.
    #[default]
    Always,
    /// Keep a copy of the loaded document and save only when the
    /// handler actually changed it — the ablation experiment E1b.
    WhenChanged,
}

/// How an operation relates to resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Requires a resource key; state is loaded before and saved after.
    Resource,
    /// Service-level operation (factories, group queries); no resource
    /// is loaded, but the handler may create/destroy resources itself.
    Static,
}

/// How an operation touches resource state. `Read` ops take a shared
/// lease, never diff, and skip the save stage entirely; `Write` ops
/// take an exclusive lease and run the full load→invoke→save pipeline.
/// Author operations default to `Write` (safe for arbitrary handlers);
/// [`ServiceBuilder::read_operation`] opts a handler into `Read`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpAccess {
    /// Observes resource state only; mutations to the loaded document
    /// are discarded, so many readers may run concurrently.
    Read,
    /// May mutate resource state; serialized per resource.
    Write,
}

/// One dispatchable operation (visible to the port-type installers).
pub(crate) struct Op {
    kind: OpKind,
    access: OpAccess,
    /// Interned `dispatch.{op}` span name, so traced dispatches never
    /// format or allocate a name per call.
    span_name: Arc<str>,
    handler: OpHandler,
}

/// Number of lease stripes per service (power of two). Distinct keys
/// may share a stripe — that costs spurious contention, never safety.
const LEASE_STRIPES: usize = 64;

/// Striped per-resource leases: the container holds a stripe's lock —
/// shared for [`OpAccess::Read`], exclusive for [`OpAccess::Write`] —
/// across the load→invoke→save window, so two concurrent writers can
/// never both load, mutate private copies, and last-save-win (the
/// lost-update race WSRF.NET delegates to database transactions, §5).
/// Handlers run *inside* the lease, so they must not dispatch back
/// into the same service; direct `ServiceCore` calls (create/destroy)
/// stay lease-free and remain safe to make from handlers.
struct LeaseTable {
    stripes: Box<[RwLock<()>]>,
}

impl LeaseTable {
    fn new() -> Self {
        LeaseTable {
            stripes: (0..LEASE_STRIPES).map(|_| RwLock::new(())).collect(),
        }
    }

    fn stripe(&self, key: &str) -> &RwLock<()> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) & (LEASE_STRIPES - 1)]
    }
}

/// A held lease (either mode); released on drop after the save stage.
enum LeaseGuard<'a> {
    Shared(#[allow(dead_code)] RwLockReadGuard<'a, ()>),
    Exclusive(#[allow(dead_code)] RwLockWriteGuard<'a, ()>),
}

/// Shared, long-lived half of a service: everything handlers need to
/// mint EPRs, create resources, schedule lifetimes and talk to the
/// network. Cheaply cloneable via `Arc`.
pub struct ServiceCore {
    /// Service name (also the store's table name).
    pub name: String,
    /// Full address, e.g. `inproc://machine01/ExecutionService`.
    pub address: String,
    /// The grid clock.
    pub clock: Clock,
    /// The simulated network (for outgoing calls/notifications).
    pub net: Arc<InProcNetwork>,
    /// Resource state backend.
    pub store: Arc<dyn ResourceStore>,
    /// Qualified name of the reference property carrying the resource
    /// key (in Clark form), e.g. `{uvacg}JobKey`.
    pub key_property: String,
    /// Deployment-wide metrics registry (disabled by default; see
    /// [`ServiceBuilder::with_metrics`]). Handlers and higher layers
    /// register their own metrics through this.
    pub metrics: Arc<MetricsRegistry>,
    next_key: AtomicU64,
    /// Scheduled-destruction timers per resource key.
    lifetime: Mutex<HashMap<String, TimerId>>,
    computed: Vec<(QName, ComputedProperty)>,
}

impl ServiceCore {
    /// The EPR naming one of this service's resources.
    pub fn epr_for(&self, key: &str) -> EndpointReference {
        EndpointReference::resource(&self.address, &self.key_property, key)
    }

    /// The service's own (resource-less) EPR.
    pub fn service_epr(&self) -> EndpointReference {
        EndpointReference::service(&self.address)
    }

    /// Generate a fresh resource key.
    pub fn fresh_key(&self) -> String {
        let n = self.next_key.fetch_add(1, Ordering::Relaxed);
        format!("{}-{}", self.name.to_ascii_lowercase(), n)
    }

    /// Create a resource with a generated key; returns its EPR.
    pub fn create_resource(&self, doc: PropertyDoc) -> Result<EndpointReference, BaseFault> {
        let key = self.fresh_key();
        self.create_resource_with_key(&key, doc)
    }

    /// Create a resource under an explicit key.
    pub fn create_resource_with_key(
        &self,
        key: &str,
        doc: PropertyDoc,
    ) -> Result<EndpointReference, BaseFault> {
        self.store
            .create(&self.name, key, &doc)
            .map_err(faults::from_store)?;
        Ok(self.epr_for(key))
    }

    /// Destroy a resource immediately (WS-ResourceLifetime `Destroy`).
    pub fn destroy_resource(&self, key: &str) -> Result<(), BaseFault> {
        if let Some(t) = self.lifetime.lock().remove(key) {
            self.clock.cancel(t);
        }
        self.store
            .destroy(&self.name, key)
            .map_err(faults::from_store)
    }

    /// Schedule destruction at an absolute virtual time
    /// (WS-ResourceLifetime `SetTerminationTime`), replacing any
    /// earlier schedule. `None` cancels scheduled destruction.
    pub fn set_termination_time(self: &Arc<Self>, key: &str, at: Option<SimTime>) {
        let mut lt = self.lifetime.lock();
        if let Some(t) = lt.remove(key) {
            self.clock.cancel(t);
        }
        if let Some(at) = at {
            let core = Arc::clone(self);
            let key_owned = key.to_string();
            let timer = self.clock.schedule_at(at, move |now| {
                // Best-effort: the resource may already be gone.
                core.lifetime.lock().remove(&key_owned);
                if core.store.destroy(&core.name, &key_owned).is_ok() {
                    core.metrics.events().emit(
                        Severity::Info,
                        EventKind::LeaseExpiry,
                        &core.name,
                        now.as_nanos(),
                        || format!("resource {key_owned} destroyed at lease expiry"),
                    );
                }
            });
            lt.insert(key.to_string(), timer);
        }
    }

    /// The scheduled termination time of a resource, if any — exposed
    /// because `TerminationTime` is itself a resource property.
    pub fn termination_scheduled(&self, key: &str) -> bool {
        self.lifetime.lock().contains_key(key)
    }

    /// Evaluate computed properties against stored state.
    pub fn computed_values(&self, doc: &PropertyDoc) -> Vec<Element> {
        let now = self.clock.now();
        self.computed
            .iter()
            .flat_map(|(_, f)| f(doc, now))
            .collect()
    }

    /// Full property view (stored + computed) as a document.
    pub fn property_view(&self, doc: &PropertyDoc) -> Element {
        let mut root = doc.to_document(QName::new(ns::WSRP, "ResourcePropertyDocument"));
        for v in self.computed_values(doc) {
            root.push_child(v);
        }
        root
    }

    /// Look up values for one property name (stored first, then
    /// computed).
    pub fn property_values(&self, doc: &PropertyDoc, name: &QName) -> Vec<Element> {
        let mut vals: Vec<Element> = doc.get(name).to_vec();
        if vals.is_empty() {
            vals = doc.get_local(&name.local).to_vec();
        }
        if vals.is_empty() {
            let now = self.clock.now();
            for (n, f) in &self.computed {
                if n == name || n.local == name.local {
                    vals.extend(f(doc, now));
                }
            }
        }
        vals
    }

    /// Does the service declare a property with this name (stored
    /// schema is open, so this checks computed names only)?
    pub fn has_computed(&self, name: &QName) -> bool {
        self.computed
            .iter()
            .any(|(n, _)| n == name || n.local == name.local)
    }
}

/// The request body as seen by a handler: a DOM reference on the
/// classic path, a deferred wire span on the lazy path.
///
/// `BodyRef` derefs to [`Element`], so `ctx.body.find(..)` and friends
/// keep working unchanged — but on the lazy path the *first* deref is
/// what materializes the DOM (counted by [`wsrf_xml::dom_build_count`]).
/// Handlers that need at most the operation element's name or text
/// should use [`name`](Self::name) / [`text`](Self::text), which never
/// materialize; that is how the WS-RP read operations answer with zero
/// DOM builds. [`dom`](Self::dom) returns the element at the full
/// dispatch lifetime for handlers that must hold it across a
/// `resource_mut()` borrow.
#[derive(Clone, Copy)]
pub struct BodyRef<'a> {
    view: BodyView<'a>,
    cell: &'a OnceCell<Element>,
}

#[derive(Clone, Copy)]
enum BodyView<'a> {
    Dom(&'a Element),
    Lazy(&'a LazyEnvelope<'a>),
}

impl<'a> BodyRef<'a> {
    /// A body already materialized as a tree (the DOM dispatch path).
    /// The cell is untouched; callers pass a fresh one per dispatch.
    pub fn dom_backed(body: &'a Element, cell: &'a OnceCell<Element>) -> Self {
        BodyRef {
            view: BodyView::Dom(body),
            cell,
        }
    }

    /// A body deferred as a raw wire span (the lazy dispatch path).
    pub fn lazy_backed(env: &'a LazyEnvelope<'a>, cell: &'a OnceCell<Element>) -> Self {
        BodyRef {
            view: BodyView::Lazy(env),
            cell,
        }
    }

    /// The operation element's qualified name. Never materializes.
    pub fn name(&self) -> &'a QName {
        match self.view {
            BodyView::Dom(e) => &e.name,
            BodyView::Lazy(le) => le.body_name(),
        }
    }

    /// The operation element's text content (like
    /// [`Element::text_content`]). Never materializes on the lazy
    /// path — text is collected straight from the event stream.
    pub fn text(&self) -> String {
        match self.view {
            BodyView::Dom(e) => e.text_content(),
            BodyView::Lazy(le) => le.body_text(),
        }
    }

    /// The full body element, materialized on first use on the lazy
    /// path. Unlike deref, the returned reference lives for the whole
    /// dispatch, so it can be held across `ctx.resource_mut()`.
    pub fn dom(&self) -> &'a Element {
        match self.view {
            BodyView::Dom(e) => e,
            BodyView::Lazy(le) => self.cell.get_or_init(|| {
                // The span tokenized cleanly during the routing scan,
                // so re-building it cannot fail; degrade to an empty
                // element of the right name rather than panicking.
                le.materialize_body()
                    .unwrap_or_else(|_| Element::with_name(le.body_name().clone()))
            }),
        }
    }
}

impl std::ops::Deref for BodyRef<'_> {
    type Target = Element;

    fn deref(&self) -> &Element {
        self.dom()
    }
}

/// The invocation context passed to every handler.
pub struct Ctx<'a> {
    /// Shared service machinery.
    pub core: &'a Arc<ServiceCore>,
    /// Decoded addressing headers of the request.
    pub info: &'a MessageInfo,
    /// The resolved resource key, when present in the headers.
    pub key: Option<String>,
    /// The resource's state, loaded for [`OpKind::Resource`] ops;
    /// mutations are saved back after the handler returns Ok.
    pub resource: Option<&'a mut PropertyDoc>,
    /// All raw header blocks (for security processing). On the lazy
    /// path only tree-shaped headers (`<ReplyTo>`, WS-Security) are
    /// present; text headers live in `info`.
    pub headers: &'a [Element],
    /// The request body (deref to use it as an [`Element`]).
    pub body: BodyRef<'a>,
    /// The trace context of this dispatch — the container's own span
    /// when it is recording, otherwise the context carried in the
    /// request headers. Handlers stamp this onto every outgoing
    /// message so the causal chain survives each hop.
    pub trace: Option<TraceContext>,
}

impl Ctx<'_> {
    /// The loaded resource, or a `NoSuchResource`-style fault.
    pub fn resource_mut(&mut self) -> Result<&mut PropertyDoc, BaseFault> {
        match self.resource.as_deref_mut() {
            Some(doc) => Ok(doc),
            None => Err(faults::missing_resource_key(&self.core.name)),
        }
    }

    /// The resource key, or a fault.
    pub fn key(&self) -> Result<&str, BaseFault> {
        self.key
            .as_deref()
            .ok_or_else(|| faults::missing_resource_key(&self.core.name))
    }

    /// Find a raw header by name (e.g. the WS-Security block).
    pub fn header(&self, nsuri: &str, local: &str) -> Option<&Element> {
        self.headers.iter().find(|h| h.name.is(nsuri, local))
    }
}

/// One sampled dispatch in every `STAGE_SAMPLE_EVERY` records its
/// per-stage timings (the first always does, so even a one-dispatch
/// service shows all four stages). Counters stay exact for every
/// dispatch; only the stage histograms are sampled — this keeps the
/// enabled-metrics dispatch overhead to a handful of atomic ops.
const STAGE_SAMPLE_EVERY: u64 = 16;

/// Pre-registered handles for the Figure 1 pipeline stages, created
/// once at build time so the dispatch hot path never touches the
/// registry. All handles are no-ops when metrics are disabled.
struct DispatchObs {
    enabled: bool,
    /// Rolling tick deciding which dispatches sample stage timings.
    sample_tick: AtomicU64,
    /// Total dispatches entering the pipeline.
    dispatches: Counter,
    /// Dispatches that produced a fault envelope.
    faults: Counter,
    /// Stage (1)+(2): addressing-header extraction and EPR resolution.
    resolve: Timer,
    /// Stage (2b): resource state load from the store.
    load: Timer,
    /// Stage (3): handler invocation.
    invoke: Timer,
    /// Stage (4): state write-back.
    save: Timer,
    /// Bytes of resource state loaded / saved (serialized size).
    load_bytes: Counter,
    save_bytes: Counter,
    /// Resource-scoped dispatches by access mode (exact counts).
    reads: Counter,
    writes: Counter,
    /// Real nanoseconds spent waiting to acquire the per-resource
    /// lease, recorded on sampled dispatches — the contention signal.
    lock_wait: Histogram,
    /// Per-operation invocation counts, keyed by action URI.
    per_op: HashMap<String, Counter>,
    /// Structured event log for fault envelopes (noop when disabled).
    events: EventLog,
    /// Per-service SLO window fed by every dispatch outcome.
    slo: SloHandle,
}

impl DispatchObs {
    fn new(registry: &MetricsRegistry, service: &str, actions: &HashMap<String, Op>) -> Self {
        let prefix = format!("container.{service}");
        let per_op = actions
            .keys()
            .map(|action| {
                let op = action.rsplit('/').next().unwrap_or(action);
                (
                    action.clone(),
                    registry.counter(&format!("{prefix}.op.{op}.count")),
                )
            })
            .collect();
        DispatchObs {
            enabled: registry.is_enabled(),
            sample_tick: AtomicU64::new(0),
            dispatches: registry.counter(&format!("{prefix}.dispatches")),
            faults: registry.counter(&format!("{prefix}.faults")),
            resolve: registry.timer(&format!("{prefix}.stage.resolve")),
            load: registry.timer(&format!("{prefix}.stage.load")),
            invoke: registry.timer(&format!("{prefix}.stage.invoke")),
            save: registry.timer(&format!("{prefix}.stage.save")),
            load_bytes: registry.counter(&format!("{prefix}.store.load_bytes")),
            save_bytes: registry.counter(&format!("{prefix}.store.save_bytes")),
            reads: registry.counter(&format!("{prefix}.reads")),
            writes: registry.counter(&format!("{prefix}.writes")),
            lock_wait: registry.histogram(&format!("{prefix}.lock_wait_ns")),
            per_op,
            events: registry.events().clone(),
            slo: registry.slo().service(service),
        }
    }

    /// Should this dispatch time its stages?
    fn sample_stages(&self) -> bool {
        self.enabled && self.sample_tick.fetch_add(1, Ordering::Relaxed) % STAGE_SAMPLE_EVERY == 0
    }
}

/// Boundary tracker for one sampled dispatch: the stages are
/// contiguous, so each edge needs a single read of each clock (instead
/// of a start/stop pair per stage).
struct StageLap {
    virt: SimTime,
    real: std::time::Instant,
}

impl StageLap {
    fn begin(clock: &Clock) -> Self {
        StageLap {
            virt: clock.now(),
            real: std::time::Instant::now(),
        }
    }

    /// Close the current stage into `timer` and open the next one.
    fn lap(&mut self, clock: &Clock, timer: &Timer) {
        let virt = clock.now();
        let real = std::time::Instant::now();
        timer.record(virt.since(self.virt), real.duration_since(self.real));
        self.virt = virt;
        self.real = real;
    }
}

/// Estimated serialized size of a property document, for byte
/// accounting. Only evaluated when metrics are enabled; estimated
/// rather than serialized so accounting never dominates dispatch.
fn doc_bytes(doc: &PropertyDoc) -> u64 {
    doc.approx_bytes() as u64
}

/// A deployed WSRF service: the wrapper web service of Figure 1.
pub struct Service {
    core: Arc<ServiceCore>,
    ops: HashMap<String, Op>,
    save_policy: SavePolicy,
    /// Per-resource read/write leases; `None` only when disabled via
    /// [`ServiceBuilder::without_leases`] (the lost-update ablation).
    leases: Option<LeaseTable>,
    description: Element,
    obs: DispatchObs,
    tracer: Tracer,
    /// Interned service name for span records.
    label: Arc<str>,
}

impl Service {
    /// Shared machinery, for handlers captured outside dispatch.
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// The service's self-description document (the WSDL analogue;
    /// also served under [`crate::wsdl::DESCRIBE_ACTION`]).
    pub fn description(&self) -> &Element {
        &self.description
    }

    /// Register this service on the network under its address.
    pub fn register(self: &Arc<Self>, net: &InProcNetwork) {
        net.register(self.core.address.clone(), self.clone() as Arc<dyn Endpoint>);
    }

    /// Dispatch pipeline (see module docs). Public so in-process tests
    /// can invoke without a network.
    pub fn dispatch(&self, env: Envelope) -> Envelope {
        self.obs.dispatches.inc();
        let started = self.obs.enabled.then(std::time::Instant::now);
        let result = self.try_dispatch(&env);
        self.complete(started, result)
    }

    /// Dispatch straight from the wire form: route on a forward-only
    /// header scan ([`LazyEnvelope`]) and materialize the body DOM
    /// only if the invoked handler actually dereferences it. This is
    /// the inbound half of the zero-copy wire path; the socket
    /// transports call it through [`Endpoint::handle_wire`] with a
    /// borrowed slice of their per-connection receive buffer.
    pub fn dispatch_wire(&self, wire: &str) -> Envelope {
        match LazyEnvelope::scan(wire) {
            Ok(lazy) => {
                self.obs.dispatches.inc();
                let started = self.obs.enabled.then(std::time::Instant::now);
                let result = self.try_dispatch_lazy(&lazy);
                self.complete(started, result)
            }
            // Addressing-shaped problems fault exactly like the DOM
            // pipeline's MessageInfo::extract stage...
            Err(e) if e.message == "message has no wsa:Action header" => {
                self.obs.dispatches.inc();
                let started = self.obs.enabled.then(std::time::Instant::now);
                let fault = faults::bad_request(&format!("bad addressing headers: {e}"));
                self.complete(started, Err(fault))
            }
            // ...while unparseable wires mirror the fault the DOM-path
            // transports produced themselves before dispatch.
            Err(e) => SoapFault::client(format!("unparseable envelope: {e}")).to_envelope(),
        }
    }

    /// Shared tail of both dispatch entry points: SLO accounting and
    /// fault-envelope rendering.
    fn complete(
        &self,
        started: Option<std::time::Instant>,
        result: Result<Envelope, BaseFault>,
    ) -> Envelope {
        match result {
            Ok(resp) => {
                if let Some(t) = started {
                    let latency = t.elapsed().as_nanos() as u64;
                    self.obs
                        .slo
                        .record(true, latency, self.core.clock.now().as_nanos());
                }
                resp
            }
            Err(fault) => {
                self.obs.faults.inc();
                let now = self.core.clock.now();
                if let Some(t) = started {
                    self.obs
                        .slo
                        .record(false, t.elapsed().as_nanos() as u64, now.as_nanos());
                }
                self.obs.events.emit(
                    Severity::Warn,
                    EventKind::DispatchFault,
                    &self.label,
                    now.as_nanos(),
                    || format!("{}: {}", fault.error_code, fault.description),
                );
                let f = fault
                    .at(now.as_secs_f64())
                    .from_originator(self.core.service_epr());
                SoapFault::from_base(f).to_envelope()
            }
        }
    }

    fn try_dispatch(&self, env: &Envelope) -> Result<Envelope, BaseFault> {
        // (1) Read the addressing headers / EPR.
        let info = MessageInfo::extract(env)
            .map_err(|e| faults::bad_request(&format!("bad addressing headers: {e}")))?;
        let cell = OnceCell::new();
        self.run_pipeline(
            &info,
            TraceContext::from_envelope(env),
            &env.headers,
            BodyRef::dom_backed(&env.body, &cell),
        )
    }

    fn try_dispatch_lazy(&self, lazy: &LazyEnvelope<'_>) -> Result<Envelope, BaseFault> {
        // Stage (1) already happened inside the scan: the addressing
        // view was reconstructed from the event stream.
        let cell = OnceCell::new();
        self.run_pipeline(
            &lazy.info,
            lazy.trace,
            &lazy.headers,
            BodyRef::lazy_backed(lazy, &cell),
        )
    }

    /// Stages (1b)–(5) of the Figure 1 pipeline, shared by the DOM and
    /// lazy entry points.
    fn run_pipeline(
        &self,
        info: &MessageInfo,
        incoming: Option<TraceContext>,
        headers: &[Element],
        body: BodyRef<'_>,
    ) -> Result<Envelope, BaseFault> {
        // Stage timings are sampled (see STAGE_SAMPLE_EVERY); a
        // dispatch that faults mid-pipeline records only the stages it
        // completed. Counters below are exact for every dispatch.
        let mut lap = self
            .obs
            .sample_stages()
            .then(|| StageLap::begin(&self.core.clock));

        let op = self
            .ops
            .get(&info.action)
            .ok_or_else(|| faults::no_such_operation(&info.action))?;
        if let Some(c) = self.obs.per_op.get(&info.action) {
            c.inc();
        }

        // A span covering the whole pipeline, opened only when the
        // request carries a trace header: traces begin at explicit
        // entry points (the client's submit), containers and transports
        // only extend them. Headerless traffic therefore costs one
        // header scan and a branch even with tracing enabled, and
        // untraced background chatter can never evict job-set trees
        // from the bounded span ring. The guard finishes (after the
        // save stage) on every exit path.
        let mut span = match incoming {
            Some(tc) if self.tracer.is_enabled() => Some(self.tracer.start_child(
                SpanContext {
                    trace_id: tc.trace_id,
                    span_id: tc.span_id,
                    sampled: tc.sampled,
                },
                op.span_name.clone(),
                self.label.clone(),
                &self.core.clock,
            )),
            _ => None,
        };
        let trace = match &span {
            Some(s) if s.context().is_active() => {
                let c = s.context();
                Some(TraceContext::new(c.trace_id, c.span_id, c.sampled))
            }
            _ => incoming,
        };

        // (2) Resolve the WS-Resource named by the reference properties.
        let key = info
            .to
            .reference_properties
            .iter()
            .find(|(n, _)| {
                *n == self.core.key_property
                    || QName::from_clark(n).local
                        == QName::from_clark(&self.core.key_property).local
            })
            .map(|(_, v)| v.clone());
        if let Some(l) = lap.as_mut() {
            l.lap(&self.core.clock, &self.obs.resolve);
        }

        // (2a) Take the per-resource lease — shared for Read ops,
        // exclusive for Write — held across load→invoke→save so
        // concurrent writers to one resource serialize instead of
        // last-save-wins. Acquisition wait is the contention metric.
        let mut loaded: Option<PropertyDoc> = None;
        let mut before: Option<PropertyDoc> = None;
        let mut _lease: Option<LeaseGuard<'_>> = None;
        if op.kind == OpKind::Resource {
            let k = key
                .as_deref()
                .ok_or_else(|| faults::missing_resource_key(&self.core.name))?;
            match op.access {
                OpAccess::Read => self.obs.reads.inc(),
                OpAccess::Write => self.obs.writes.inc(),
            }
            if let Some(leases) = &self.leases {
                let waited = lap.is_some().then(std::time::Instant::now);
                _lease = Some(match op.access {
                    OpAccess::Read => LeaseGuard::Shared(leases.stripe(k).read()),
                    OpAccess::Write => LeaseGuard::Exclusive(leases.stripe(k).write()),
                });
                if let Some(t0) = waited {
                    self.obs.lock_wait.record(t0.elapsed().as_nanos() as u64);
                }
            }
            let doc = self
                .core
                .store
                .load(&self.core.name, k)
                .map_err(faults::from_store)?;
            if self.obs.enabled {
                self.obs.load_bytes.add(doc_bytes(&doc));
            }
            // Read ops never write back, so they never need the
            // clone-for-diff copy either.
            if self.save_policy == SavePolicy::WhenChanged && op.access == OpAccess::Write {
                before = Some(doc.clone());
            }
            loaded = Some(doc);
        }
        if let Some(l) = lap.as_mut() {
            l.lap(&self.core.clock, &self.obs.load);
        }

        // (3) Invoke the method with the state in scope.
        if let (Some(s), Some(k)) = (span.as_mut(), key.as_deref()) {
            s.annotate("key", k);
        }
        let mut ctx = Ctx {
            core: &self.core,
            info,
            key: key.clone(),
            resource: loaded.as_mut(),
            headers,
            body,
            trace,
        };
        let result = (op.handler)(&mut ctx)?;
        if let Some(l) = lap.as_mut() {
            l.lap(&self.core.clock, &self.obs.invoke);
        }

        // (4) Save changed state back — Write ops only; Read ops skip
        // the stage outright. By default writes save unconditionally,
        // like WSRF.NET; SavePolicy::WhenChanged diffs first (ablation
        // E1b).
        if let Some(doc) = loaded.filter(|_| op.access == OpAccess::Write) {
            let k = key.as_deref().expect("resource op had a key");
            let unchanged = matches!(&before, Some(b) if *b == doc);
            if !unchanged {
                match self.core.store.save(&self.core.name, k, &doc) {
                    Ok(()) => {
                        if self.obs.enabled {
                            self.obs.save_bytes.add(doc_bytes(&doc));
                        }
                    }
                    // The handler (or a lifetime timer) destroyed the
                    // resource mid-dispatch; dropping the write is
                    // correct — saving would resurrect the row.
                    Err(crate::store::StoreError::NotFound(_)) => {}
                    Err(e) => return Err(faults::from_store(e)),
                }
            }
        }
        if let Some(l) = lap.as_mut() {
            l.lap(&self.core.clock, &self.obs.save);
        }

        // (5) Serialize the response.
        let mut resp = Envelope::new(result);
        MessageInfo::response_to(info, "Response").apply(&mut resp);
        Ok(resp)
    }
}

impl Endpoint for Service {
    fn handle(&self, env: Envelope) -> Option<Envelope> {
        Some(self.dispatch(env))
    }

    /// Route from the raw wire text without pre-parsing a DOM — the
    /// inbound zero-copy path used by the socket transports.
    fn handle_wire(&self, wire: &str) -> Option<Envelope> {
        Some(self.dispatch_wire(wire))
    }

    fn name(&self) -> &str {
        &self.core.name
    }
}

/// Builder mirroring the Figure 2 programming model.
pub struct ServiceBuilder {
    name: String,
    address: String,
    key_property: String,
    store: Arc<dyn ResourceStore>,
    ops: HashMap<String, Op>,
    computed: Vec<(QName, ComputedProperty)>,
    standard_port_types: bool,
    lifetime_port_type: bool,
    leases: bool,
    save_policy: SavePolicy,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ServiceBuilder {
    /// Start building a service deployed at `address`.
    pub fn new(
        name: impl Into<String>,
        address: impl Into<String>,
        store: Arc<dyn ResourceStore>,
    ) -> Self {
        let name = name.into();
        ServiceBuilder {
            key_property: format!("{{{}}}{}Key", ns::UVACG, name),
            name,
            address: address.into(),
            store,
            ops: HashMap::new(),
            computed: Vec::new(),
            standard_port_types: true,
            lifetime_port_type: true,
            leases: true,
            save_policy: SavePolicy::Always,
            metrics: None,
        }
    }

    /// Attach a metrics registry; dispatch-stage timings, per-operation
    /// counts, and store byte counters are recorded into it. When not
    /// set, the network's registry is used (a disabled registry unless
    /// the network was built with one).
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Choose the state write-back policy (ablation experiment E1b).
    pub fn save_policy(mut self, policy: SavePolicy) -> Self {
        self.save_policy = policy;
        self
    }

    /// Override the reference-property name carrying the resource key
    /// (Clark form).
    pub fn key_property(mut self, clark_name: impl Into<String>) -> Self {
        self.key_property = clark_name.into();
        self
    }

    /// Add a resource-scoped operation (state loaded/saved around it).
    /// The action URI is `{UVACG}/{service}/{op}`.
    pub fn operation(
        mut self,
        op_name: &str,
        handler: impl Fn(&mut Ctx<'_>) -> Result<Element, BaseFault> + Send + Sync + 'static,
    ) -> Self {
        let action = action_uri(&self.name, op_name);
        insert_op(
            &mut self.ops,
            action,
            OpKind::Resource,
            OpAccess::Write,
            Box::new(handler),
        );
        self
    }

    /// Add a resource-scoped operation that only *observes* state: it
    /// runs under a shared lease, skips the clone-for-diff and the
    /// whole save stage, and any mutation of the loaded document is
    /// discarded. Opt in only for genuinely read-only handlers.
    pub fn read_operation(
        mut self,
        op_name: &str,
        handler: impl Fn(&mut Ctx<'_>) -> Result<Element, BaseFault> + Send + Sync + 'static,
    ) -> Self {
        let action = action_uri(&self.name, op_name);
        insert_op(
            &mut self.ops,
            action,
            OpKind::Resource,
            OpAccess::Read,
            Box::new(handler),
        );
        self
    }

    /// Add a service-scoped (static/factory) operation.
    pub fn static_operation(
        mut self,
        op_name: &str,
        handler: impl Fn(&mut Ctx<'_>) -> Result<Element, BaseFault> + Send + Sync + 'static,
    ) -> Self {
        let action = action_uri(&self.name, op_name);
        insert_op(
            &mut self.ops,
            action,
            OpKind::Static,
            OpAccess::Write,
            Box::new(handler),
        );
        self
    }

    /// Add an operation under an explicit action URI (used by the
    /// WS-Notification layer, whose actions live in the WSN
    /// namespaces). Defaults to `Write` access.
    pub fn raw_operation(
        mut self,
        action: impl Into<String>,
        kind: OpKind,
        handler: impl Fn(&mut Ctx<'_>) -> Result<Element, BaseFault> + Send + Sync + 'static,
    ) -> Self {
        insert_op(
            &mut self.ops,
            action.into(),
            kind,
            OpAccess::Write,
            Box::new(handler),
        );
        self
    }

    /// Declare a computed resource property (Figure 2's
    /// `[ResourceProperty]` C# getter).
    pub fn computed_property(
        mut self,
        name: QName,
        f: impl Fn(&PropertyDoc, SimTime) -> Vec<Element> + Send + Sync + 'static,
    ) -> Self {
        self.computed.push((name, Box::new(f)));
        self
    }

    /// Opt out of the standard WS-ResourceProperties port types
    /// (`[WSRFPortType]` not applied) — used by the custom-interface
    /// baseline in experiment E2.
    pub fn without_standard_port_types(mut self) -> Self {
        self.standard_port_types = false;
        self
    }

    /// Opt out of WS-ResourceLifetime operations.
    pub fn without_lifetime(mut self) -> Self {
        self.lifetime_port_type = false;
        self
    }

    /// Disable the per-resource lease layer, restoring the bare
    /// WSRF.NET-style load→invoke→save pipeline in which concurrent
    /// writers to one resource can silently lose updates. Exists so
    /// tests and the contention benchmark can demonstrate the race the
    /// leases close; never use it in a deployment.
    pub fn without_leases(mut self) -> Self {
        self.leases = false;
        self
    }

    /// Finish: produce the deployable service.
    pub fn build(self, clock: Clock, net: Arc<InProcNetwork>) -> Arc<Service> {
        let metrics = self
            .metrics
            .unwrap_or_else(|| net.metrics_registry().clone());
        // A durable store may already hold resources from a previous
        // incarnation of this service; start the key sequence past the
        // highest `{name}-N` key it carries so restart cannot mint a
        // colliding EPR.
        let prefix = format!("{}-", self.name.to_ascii_lowercase());
        let next = self
            .store
            .list(&self.name)
            .iter()
            .filter_map(|k| k.strip_prefix(&prefix)?.parse::<u64>().ok())
            .max()
            .map_or(1, |n| n + 1);
        let core = Arc::new(ServiceCore {
            name: self.name,
            address: self.address,
            clock,
            net,
            store: self.store,
            key_property: self.key_property,
            metrics,
            next_key: AtomicU64::new(next),
            lifetime: Mutex::new(HashMap::new()),
            computed: self.computed,
        });
        let mut ops = self.ops;
        if self.standard_port_types {
            crate::porttypes::install_resource_properties(&mut ops);
        }
        if self.lifetime_port_type {
            crate::porttypes::install_lifetime(&mut ops);
        }
        // Self-description (the WSDL analogue): every service answers
        // GetServiceDescription with its operation table.
        let mut actions: Vec<(String, bool)> = ops
            .iter()
            .map(|(a, op)| (a.clone(), op.kind == OpKind::Resource))
            .collect();
        let computed_names: Vec<QName> = core.computed.iter().map(|(n, _)| n.clone()).collect();
        let description = crate::wsdl::describe(
            &core.name,
            &core.address,
            &core.key_property,
            &mut actions,
            &computed_names,
        );
        let desc_for_op = description.clone();
        insert_op(
            &mut ops,
            crate::wsdl::DESCRIBE_ACTION.to_string(),
            OpKind::Static,
            OpAccess::Read,
            Box::new(move |_| Ok(desc_for_op.clone())),
        );
        let obs = DispatchObs::new(&core.metrics, &core.name, &ops);
        let tracer = core.metrics.tracer().clone();
        let label: Arc<str> = core.name.as_str().into();
        Arc::new(Service {
            core,
            ops,
            save_policy: self.save_policy,
            leases: self.leases.then(LeaseTable::new),
            description,
            obs,
            tracer,
            label,
        })
    }
}

/// Action URI for an author-defined operation.
pub fn action_uri(service: &str, op: &str) -> String {
    format!("{}/{}/{}", ns::UVACG, service, op)
}

/// Insert an operation into a builder-produced map (used by the port
/// type installers).
pub(crate) fn insert_op(
    ops: &mut HashMap<String, Op>,
    action: String,
    kind: OpKind,
    access: OpAccess,
    handler: OpHandler,
) {
    let op_name = action.rsplit('/').next().unwrap_or(&action);
    let span_name: Arc<str> = format!("dispatch.{op_name}").into();
    ops.insert(
        action,
        Op {
            kind,
            access,
            span_name,
            handler,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use wsrf_soap::ns::UVACG;

    fn q(local: &str) -> QName {
        QName::new(UVACG, local)
    }

    fn call(svc: &Arc<Service>, to: EndpointReference, action: &str, body: Element) -> Envelope {
        let mut env = Envelope::new(body);
        MessageInfo::request(to, action).apply(&mut env);
        svc.dispatch(env)
    }

    fn demo_service() -> (Arc<Service>, Arc<InProcNetwork>) {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("Demo", "inproc://m1/Demo", Arc::new(MemoryStore::new()))
            .static_operation("Create", |ctx| {
                let mut doc = PropertyDoc::new();
                doc.set_text(q("Status"), "Fresh");
                doc.set_i64(q("Hits"), 0);
                let epr = ctx.core.create_resource(doc)?;
                Ok(Element::new(UVACG, "CreateResponse").child(epr.to_element()))
            })
            .operation("Touch", |ctx| {
                let doc = ctx.resource_mut()?;
                let hits = doc.i64(&q("Hits")).unwrap_or(0) + 1;
                doc.set_i64(q("Hits"), hits);
                Ok(Element::new(UVACG, "TouchResponse").text(hits.to_string()))
            })
            .computed_property(q("Blurb"), |doc, now| {
                let status = doc.text_local("Status").unwrap_or_default();
                vec![Element::new(UVACG, "Blurb").text(format!("At {now} the status is {status}"))]
            })
            .build(clock, net.clone());
        svc.register(&net);
        (svc, net)
    }

    fn create_resource(svc: &Arc<Service>) -> EndpointReference {
        let resp = call(
            svc,
            svc.core().service_epr(),
            &action_uri("Demo", "Create"),
            Element::new(UVACG, "Create"),
        );
        assert!(!resp.is_fault(), "{:?}", resp.fault());
        EndpointReference::from_element(resp.body.find(ns::WSA, "EndpointReference").unwrap())
            .unwrap()
    }

    #[test]
    fn rebuilt_service_skips_keys_already_in_the_store() {
        // A durable store replayed after a restart still holds the old
        // incarnation's resources; a fresh build must not mint their
        // keys again.
        let store = Arc::new(MemoryStore::new());
        store.create("Demo", "demo-7", &PropertyDoc::new()).unwrap();
        store.create("Demo", "demo-3", &PropertyDoc::new()).unwrap();
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("Demo", "inproc://m1/Demo", store)
            .static_operation("Create", |ctx| {
                let epr = ctx.core.create_resource(PropertyDoc::new())?;
                Ok(Element::new(UVACG, "CreateResponse").child(epr.to_element()))
            })
            .build(clock, net.clone());
        svc.register(&net);
        let epr = create_resource(&svc);
        assert_eq!(epr.resource_key().unwrap(), "demo-8");
    }

    #[test]
    fn factory_creates_and_resource_ops_mutate_state() {
        let (svc, _net) = demo_service();
        let epr = create_resource(&svc);
        assert_eq!(epr.address, "inproc://m1/Demo");
        let key = epr.resource_key().unwrap().to_string();
        assert!(svc.core().store.exists("Demo", &key));

        for expected in 1..=3 {
            let resp = call(
                &svc,
                epr.clone(),
                &action_uri("Demo", "Touch"),
                Element::new(UVACG, "Touch"),
            );
            assert!(!resp.is_fault());
            assert_eq!(resp.body.text_content(), expected.to_string());
        }
        // State persisted across invocations.
        let doc = svc.core().store.load("Demo", &key).unwrap();
        assert_eq!(doc.i64(&q("Hits")).unwrap(), 3);
    }

    #[test]
    fn unknown_action_faults() {
        let (svc, _net) = demo_service();
        let resp = call(
            &svc,
            svc.core().service_epr(),
            "urn:bogus/Action",
            Element::local("X"),
        );
        let fault = resp.fault().unwrap();
        assert_eq!(fault.error_code(), Some("wsrf:NoSuchOperation"));
        // The fault carries originator and timestamp.
        let detail = fault.detail.unwrap();
        assert_eq!(detail.originator.unwrap().address, "inproc://m1/Demo");
    }

    #[test]
    fn resource_op_without_key_faults() {
        let (svc, _net) = demo_service();
        let resp = call(
            &svc,
            svc.core().service_epr(), // no reference properties
            &action_uri("Demo", "Touch"),
            Element::new(UVACG, "Touch"),
        );
        assert_eq!(
            resp.fault().unwrap().error_code(),
            Some("wsrf:MissingResourceKey")
        );
    }

    #[test]
    fn missing_resource_faults() {
        let (svc, _net) = demo_service();
        let ghost = svc.core().epr_for("demo-999");
        let resp = call(
            &svc,
            ghost,
            &action_uri("Demo", "Touch"),
            Element::new(UVACG, "Touch"),
        );
        assert_eq!(
            resp.fault().unwrap().error_code(),
            Some("wsrf:NoSuchResource")
        );
    }

    #[test]
    fn dispatch_over_network() {
        let (svc, net) = demo_service();
        let epr = create_resource(&svc);
        let mut env = Envelope::new(Element::new(UVACG, "Touch"));
        MessageInfo::request(epr, action_uri("Demo", "Touch")).apply(&mut env);
        let resp = net.call("inproc://m1/Demo", env).unwrap();
        assert_eq!(resp.body.text_content(), "1");
    }

    #[test]
    fn response_carries_addressing_headers() {
        let (svc, _net) = demo_service();
        let epr = create_resource(&svc);
        let mut env = Envelope::new(Element::new(UVACG, "Touch"));
        let info = MessageInfo::request(epr, action_uri("Demo", "Touch"));
        info.apply(&mut env);
        let resp = svc.dispatch(env);
        let back = MessageInfo::extract(&resp).unwrap();
        assert_eq!(back.relates_to.as_deref(), Some(info.message_id.as_str()));
        assert!(back.action.ends_with("TouchResponse"));
    }

    #[test]
    fn handler_fault_propagates_with_timestamp() {
        let clock = Clock::manual();
        clock.advance(std::time::Duration::from_secs(42));
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("F", "inproc://m1/F", Arc::new(MemoryStore::new()))
            .static_operation("Boom", |_| Err(BaseFault::new("uvacg:Boom", "exploded")))
            .build(clock, net);
        let resp = call(
            &svc,
            svc.core().service_epr(),
            &action_uri("F", "Boom"),
            Element::local("Boom"),
        );
        let detail = resp.fault().unwrap().detail.unwrap();
        assert_eq!(detail.error_code, "uvacg:Boom");
        assert_eq!(detail.timestamp, "42.000000");
    }

    #[test]
    fn destroy_inside_handler_skips_save() {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("D", "inproc://m1/D", Arc::new(MemoryStore::new()))
            .operation("SelfDestruct", |ctx| {
                let key = ctx.key()?.to_string();
                ctx.core.destroy_resource(&key)?;
                Ok(Element::local("Gone"))
            })
            .build(clock, net);
        let epr = svc.core().create_resource(PropertyDoc::new()).unwrap();
        let resp = call(
            &svc,
            epr.clone(),
            &action_uri("D", "SelfDestruct"),
            Element::local("SelfDestruct"),
        );
        assert!(!resp.is_fault(), "{:?}", resp.fault());
        assert!(!svc.core().store.exists("D", epr.resource_key().unwrap()));
    }

    #[test]
    fn scheduled_termination_destroys_resource() {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("L", "inproc://m1/L", Arc::new(MemoryStore::new()))
            .build(clock.clone(), net);
        let core = svc.core();
        let epr = core.create_resource(PropertyDoc::new()).unwrap();
        let key = epr.resource_key().unwrap();
        core.set_termination_time(key, Some(SimTime::from_secs(10)));
        assert!(core.termination_scheduled(key));
        clock.advance(std::time::Duration::from_secs(9));
        assert!(core.store.exists("L", key));
        clock.advance(std::time::Duration::from_secs(1));
        assert!(!core.store.exists("L", key));
        assert!(!core.termination_scheduled(key));
    }

    #[test]
    fn termination_can_be_rescheduled_and_cancelled() {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("L2", "inproc://m1/L2", Arc::new(MemoryStore::new()))
            .build(clock.clone(), net);
        let core = svc.core();
        let epr = core.create_resource(PropertyDoc::new()).unwrap();
        let key = epr.resource_key().unwrap();
        core.set_termination_time(key, Some(SimTime::from_secs(5)));
        core.set_termination_time(key, Some(SimTime::from_secs(50)));
        clock.advance(std::time::Duration::from_secs(10));
        assert!(core.store.exists("L2", key), "rescheduled later");
        core.set_termination_time(key, None);
        clock.advance(std::time::Duration::from_secs(100));
        assert!(core.store.exists("L2", key), "cancelled");
    }

    /// Store wrapper counting save calls, for the SavePolicy tests.
    struct CountingStore {
        inner: MemoryStore,
        saves: std::sync::atomic::AtomicUsize,
    }

    impl crate::store::ResourceStore for CountingStore {
        fn create(
            &self,
            s: &str,
            k: &str,
            d: &PropertyDoc,
        ) -> Result<(), crate::store::StoreError> {
            self.inner.create(s, k, d)
        }
        fn load(&self, s: &str, k: &str) -> Result<PropertyDoc, crate::store::StoreError> {
            self.inner.load(s, k)
        }
        fn save(&self, s: &str, k: &str, d: &PropertyDoc) -> Result<(), crate::store::StoreError> {
            self.saves.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.save(s, k, d)
        }
        fn destroy(&self, s: &str, k: &str) -> Result<(), crate::store::StoreError> {
            self.inner.destroy(s, k)
        }
        fn exists(&self, s: &str, k: &str) -> bool {
            self.inner.exists(s, k)
        }
        fn list(&self, s: &str) -> Vec<String> {
            self.inner.list(s)
        }
        fn query(&self, s: &str, p: &wsrf_xml::xpath::Path) -> Vec<String> {
            self.inner.query(s, p)
        }
        fn backend_name(&self) -> &'static str {
            "counting"
        }
    }

    fn policy_fixture(policy: SavePolicy) -> (Arc<Service>, Arc<CountingStore>, EndpointReference) {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let store = Arc::new(CountingStore {
            inner: MemoryStore::new(),
            saves: std::sync::atomic::AtomicUsize::new(0),
        });
        let svc = ServiceBuilder::new("SP", "inproc://m/SP", store.clone())
            .save_policy(policy)
            .operation("Read", |ctx| {
                let doc = ctx.resource_mut()?;
                Ok(Element::new(UVACG, "R").text(doc.text_local("X").unwrap_or_default()))
            })
            .operation("Bump", |ctx| {
                let doc = ctx.resource_mut()?;
                let n = doc.i64(&q("X")).unwrap_or(0) + 1;
                doc.set_i64(q("X"), n);
                Ok(Element::new(UVACG, "B").text(n.to_string()))
            })
            .build(clock, net);
        let mut doc = PropertyDoc::new();
        doc.set_i64(q("X"), 0);
        let epr = svc.core().create_resource_with_key("r1", doc).unwrap();
        (svc, store, epr)
    }

    #[test]
    fn save_always_writes_on_read_only_ops() {
        let (svc, store, epr) = policy_fixture(SavePolicy::Always);
        let resp = call(
            &svc,
            epr,
            &action_uri("SP", "Read"),
            Element::new(UVACG, "Read"),
        );
        assert!(!resp.is_fault());
        assert_eq!(store.saves.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn save_when_changed_skips_clean_state_but_persists_mutations() {
        let (svc, store, epr) = policy_fixture(SavePolicy::WhenChanged);
        let resp = call(
            &svc,
            epr.clone(),
            &action_uri("SP", "Read"),
            Element::new(UVACG, "Read"),
        );
        assert!(!resp.is_fault());
        assert_eq!(
            store.saves.load(std::sync::atomic::Ordering::SeqCst),
            0,
            "clean: no save"
        );
        let resp = call(
            &svc,
            epr.clone(),
            &action_uri("SP", "Bump"),
            Element::new(UVACG, "Bump"),
        );
        assert_eq!(resp.body.text_content(), "1");
        assert_eq!(
            store.saves.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "dirty: saved"
        );
        // The mutation really persisted.
        let resp = call(
            &svc,
            epr,
            &action_uri("SP", "Read"),
            Element::new(UVACG, "Read"),
        );
        assert_eq!(resp.body.text_content(), "1");
    }

    #[test]
    fn computed_property_reflects_state_and_clock() {
        let (svc, _net) = demo_service();
        let core = svc.core();
        let mut doc = PropertyDoc::new();
        doc.set_text(q("Status"), "Running");
        let vals = core.property_values(&doc, &q("Blurb"));
        assert_eq!(vals.len(), 1);
        assert!(vals[0].text_content().contains("status is Running"));
    }
}
