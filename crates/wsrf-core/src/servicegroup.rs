//! WS-ServiceGroup: a WS-Resource whose state is a collection of
//! member entries.
//!
//! The paper's Node Info Service "is a service group (as defined by
//! WS-ServiceGroups) whose members represent the processors available
//! for scheduling". This module layers group semantics on top of the
//! container: the group itself is a singleton resource whose `Entry`
//! property lists entry EPRs; each entry is a resource of the same
//! service carrying the member's EPR and its *content* (the member's
//! advertised properties). A membership content rule names the
//! properties every member's content must include.

use std::sync::Arc;

use simclock::Clock;
use wsrf_soap::{ns, BaseFault, EndpointReference};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{Element, QName};

use crate::container::{action_uri, Service, ServiceBuilder};
use crate::faults;
use crate::properties::PropertyDoc;
use crate::store::ResourceStore;

/// Key of the singleton group resource.
pub const GROUP_KEY: &str = "group";

/// Property names used by the group implementation.
pub fn entry_property() -> QName {
    QName::new(ns::WSSG, "Entry")
}

/// Content rule: local names of properties each member's content must
/// carry.
#[derive(Debug, Clone, Default)]
pub struct MembershipContentRule {
    /// Required property local names.
    pub required: Vec<String>,
}

impl MembershipContentRule {
    /// Rule requiring the listed property names in every entry content.
    pub fn requiring(names: &[&str]) -> Self {
        MembershipContentRule {
            required: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Validate a content document against the rule.
    pub fn check(&self, content: &Element) -> Result<(), BaseFault> {
        for r in &self.required {
            if content.find_local(r).is_none() {
                return Err(BaseFault::new(
                    "wssg:ContentCreationFailed",
                    format!("member content is missing required property '{r}'"),
                ));
            }
        }
        Ok(())
    }
}

/// Build a WS-ServiceGroup service.
///
/// Operations (service-scoped actions under the service's name):
/// * `Add` — body `<Add><MemberEPR>{epr}</MemberEPR><Content>...</Content></Add>`;
///   responds with the entry's EPR.
/// * `Remove` — body `<Remove><EntryKey>k</EntryKey></Remove>`.
/// * `Entries` — lists entry EPRs.
/// * `FindByContent` — body carries an XPath-lite expression; responds
///   with the member EPRs whose content matches.
///
/// Entries are themselves WS-Resources: their `MemberEPR` and content
/// properties are readable through the standard port types, and they
/// can be destroyed/leased via WS-ResourceLifetime (the testbed's NIS
/// uses leases so dead machines age out).
pub fn service_group(
    name: &str,
    address: &str,
    store: Arc<dyn ResourceStore>,
    rule: MembershipContentRule,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Arc<Service> {
    let svc = service_group_builder(name, address, store, rule).build(clock, net);
    init_group_resource(&svc);
    svc
}

/// Create the singleton group resource (call once after building a
/// service from [`service_group_builder`]).
pub fn init_group_resource(svc: &Arc<Service>) {
    svc.core()
        .create_resource_with_key(GROUP_KEY, PropertyDoc::new())
        .expect("fresh store cannot already contain the group");
}

/// The group operations as a [`ServiceBuilder`], for services that
/// need to add their own operations on top of group membership (the
/// testbed's Node Info Service adds utilization updates and snapshot
/// queries).
pub fn service_group_builder(
    name: &str,
    address: &str,
    store: Arc<dyn ResourceStore>,
    rule: MembershipContentRule,
) -> ServiceBuilder {
    let rule = Arc::new(rule);
    let rule_add = rule.clone();
    ServiceBuilder::new(name, address, store)
        .static_operation("Add", move |ctx| {
            let member_el = ctx
                .body
                .find_local("MemberEPR")
                .ok_or_else(|| faults::bad_request("Add requires MemberEPR"))?;
            let member = EndpointReference::from_element(member_el)
                .map_err(|e| faults::bad_request(&format!("bad MemberEPR: {e}")))?;
            let content = ctx
                .body
                .find_local("Content")
                .cloned()
                .unwrap_or_else(|| Element::new(ns::WSSG, "Content"));
            rule_add.check(&content)?;

            // Create the entry resource.
            let mut doc = PropertyDoc::new();
            doc.update(
                QName::new(ns::WSSG, "MemberEPR"),
                vec![member.to_element_named(ns::WSSG, "MemberEPR")],
            );
            for prop in content.elements() {
                doc.insert(prop.name.clone(), prop.clone());
            }
            let entry_epr = ctx.core.create_resource(doc)?;
            let entry_key = faults::require_key(&entry_epr, "entry")?;

            // Append to the group's entry list.
            let mut group = ctx
                .core
                .store
                .load(&ctx.core.name, GROUP_KEY)
                .map_err(faults::from_store)?;
            group.insert(
                entry_property(),
                entry_epr
                    .to_element_named(ns::WSSG, "Entry")
                    .attr("key", &entry_key),
            );
            ctx.core
                .store
                .save(&ctx.core.name, GROUP_KEY, &group)
                .map_err(faults::from_store)?;

            Ok(Element::new(ns::WSSG, "AddResponse").child(entry_epr.to_element()))
        })
        .static_operation("Remove", |ctx| {
            let key = ctx
                .body
                .find_local("EntryKey")
                .map(|e| e.text_content())
                .ok_or_else(|| faults::bad_request("Remove requires EntryKey"))?;
            ctx.core.destroy_resource(&key)?;
            let mut group = ctx
                .core
                .store
                .load(&ctx.core.name, GROUP_KEY)
                .map_err(faults::from_store)?;
            group.remove_value(&entry_property(), |e| e.attr_value("key") == Some(&key));
            ctx.core
                .store
                .save(&ctx.core.name, GROUP_KEY, &group)
                .map_err(faults::from_store)?;
            Ok(Element::new(ns::WSSG, "RemoveResponse"))
        })
        .static_operation("Entries", |ctx| {
            let group = ctx
                .core
                .store
                .load(&ctx.core.name, GROUP_KEY)
                .map_err(faults::from_store)?;
            let entries: Vec<Element> = group.get(&entry_property()).to_vec();
            Ok(Element::new(ns::WSSG, "EntriesResponse").children(entries))
        })
        .static_operation("FindByContent", |ctx| {
            // Body text only — stays DOM-free under lazy dispatch.
            let expr = ctx.body.text();
            let path = wsrf_xml::xpath::Path::parse(&expr)
                .map_err(|e| faults::invalid_query(&e.to_string()))?;
            let mut resp = Element::new(ns::WSSG, "FindByContentResponse");
            // Scan live entries; dead ones (destroyed by lease expiry)
            // are skipped and lazily pruned from the group list.
            let group = ctx
                .core
                .store
                .load(&ctx.core.name, GROUP_KEY)
                .map_err(faults::from_store)?;
            for entry in group.get(&entry_property()) {
                let Some(key) = entry.attr_value("key") else {
                    continue;
                };
                let Ok(doc) = ctx.core.store.load(&ctx.core.name, key) else {
                    continue;
                };
                let view = doc.to_document(QName::new(ns::WSSG, "Content"));
                if !path.select(&view).is_empty() {
                    if let Some(member) = doc.get(&QName::new(ns::WSSG, "MemberEPR")).first() {
                        if let Ok(epr) = EndpointReference::from_element(member) {
                            resp.push_child(epr.to_element());
                        }
                    }
                }
            }
            Ok(resp)
        })
}

/// The group's own EPR (the singleton resource).
pub fn group_epr(svc: &Service) -> EndpointReference {
    svc.core().epr_for(GROUP_KEY)
}

/// Action URI helper for group operations.
pub fn group_action(service: &str, op: &str) -> String {
    action_uri(service, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use wsrf_soap::{Envelope, MessageInfo};

    fn setup() -> (Arc<Service>, Clock) {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = service_group(
            "NodeInfo",
            "inproc://hub/NodeInfo",
            Arc::new(MemoryStore::new()),
            MembershipContentRule::requiring(&["Utilization", "CpuMhz"]),
            clock.clone(),
            net,
        );
        (svc, clock)
    }

    fn invoke(svc: &Arc<Service>, op: &str, body: Element) -> Envelope {
        let mut env = Envelope::new(body);
        MessageInfo::request(svc.core().service_epr(), group_action("NodeInfo", op))
            .apply(&mut env);
        svc.dispatch(env)
    }

    fn add_member(svc: &Arc<Service>, addr: &str, util: f64, mhz: u32) -> EndpointReference {
        let member = EndpointReference::service(addr);
        let content = Element::new(ns::WSSG, "Content")
            .child(Element::new(ns::UVACG, "Utilization").text(util.to_string()))
            .child(Element::new(ns::UVACG, "CpuMhz").text(mhz.to_string()));
        let resp = invoke(
            svc,
            "Add",
            Element::new(ns::WSSG, "Add")
                .child(member.to_element_named(ns::WSSG, "MemberEPR"))
                .child(content),
        );
        assert!(!resp.is_fault(), "{:?}", resp.fault());
        EndpointReference::from_element(resp.body.find(ns::WSA, "EndpointReference").unwrap())
            .unwrap()
    }

    #[test]
    fn add_and_list_entries() {
        let (svc, _clock) = setup();
        add_member(&svc, "inproc://m1/Proc", 0.2, 3000);
        add_member(&svc, "inproc://m2/Proc", 0.9, 2000);
        let resp = invoke(&svc, "Entries", Element::new(ns::WSSG, "Entries"));
        assert_eq!(resp.body.element_count(), 2);
    }

    #[test]
    fn content_rule_enforced() {
        let (svc, _clock) = setup();
        let member = EndpointReference::service("inproc://m1/Proc");
        let resp = invoke(
            &svc,
            "Add",
            Element::new(ns::WSSG, "Add")
                .child(member.to_element_named(ns::WSSG, "MemberEPR"))
                .child(
                    Element::new(ns::WSSG, "Content")
                        .child(Element::new(ns::UVACG, "Utilization").text("0.5")),
                ),
        );
        assert_eq!(
            resp.fault().unwrap().error_code(),
            Some("wssg:ContentCreationFailed")
        );
    }

    #[test]
    fn find_by_content() {
        let (svc, _clock) = setup();
        add_member(&svc, "inproc://fast/Proc", 0.1, 3000);
        add_member(&svc, "inproc://busy/Proc", 0.95, 3000);
        let resp = invoke(
            &svc,
            "FindByContent",
            Element::new(ns::WSSG, "FindByContent").text("/Content[Utilization='0.1']"),
        );
        assert_eq!(resp.body.element_count(), 1);
        let epr = EndpointReference::from_element(resp.body.elements().next().unwrap()).unwrap();
        assert_eq!(epr.address, "inproc://fast/Proc");
    }

    #[test]
    fn remove_prunes_entry_and_resource() {
        let (svc, _clock) = setup();
        let entry = add_member(&svc, "inproc://m1/Proc", 0.2, 3000);
        let key = entry.resource_key().unwrap().to_string();
        let resp = invoke(
            &svc,
            "Remove",
            Element::new(ns::WSSG, "Remove").child(Element::new(ns::WSSG, "EntryKey").text(&key)),
        );
        assert!(!resp.is_fault());
        let resp = invoke(&svc, "Entries", Element::new(ns::WSSG, "Entries"));
        assert_eq!(resp.body.element_count(), 0);
        assert!(!svc.core().store.exists("NodeInfo", &key));
    }

    #[test]
    fn entry_is_a_first_class_resource() {
        let (svc, _clock) = setup();
        let entry = add_member(&svc, "inproc://m1/Proc", 0.25, 2400);
        // Read the entry's content through GetResourceProperty.
        let mut env =
            Envelope::new(Element::new(ns::WSRP, "GetResourceProperty").text("Utilization"));
        MessageInfo::request(entry, crate::porttypes::wsrp_action("GetResourceProperty"))
            .apply(&mut env);
        let resp = svc.dispatch(env);
        assert_eq!(resp.body.text_content(), "0.25");
    }

    #[test]
    fn lease_expiry_drops_member_from_queries() {
        let (svc, clock) = setup();
        let entry = add_member(&svc, "inproc://m1/Proc", 0.2, 3000);
        let key = entry.resource_key().unwrap().to_string();
        svc.core()
            .set_termination_time(&key, Some(simclock::SimTime::from_secs(30)));
        clock.advance(std::time::Duration::from_secs(31));
        let resp = invoke(
            &svc,
            "FindByContent",
            Element::new(ns::WSSG, "FindByContent").text("//Utilization"),
        );
        assert_eq!(resp.body.element_count(), 0, "expired member is invisible");
    }

    #[test]
    fn keyless_entry_epr_faults_instead_of_panicking() {
        // Add() extracts the entry resource's key via
        // faults::require_key; keyless EPRs fault rather than panic.
        let keyless = EndpointReference::service("inproc://m1/Registry");
        let fault = faults::require_key(&keyless, "entry").unwrap_err();
        assert_eq!(fault.error_code, "wsrf:BadRequest");
        assert!(fault
            .description
            .contains("entry EPR carries no resource key"));
    }
}
