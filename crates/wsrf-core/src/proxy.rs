//! Generic client-side proxies over the standard port types.
//!
//! §5 of the paper: "Not only do clients not have to create these
//! interfaces themselves (i.e., generate proxies), but there is
//! potential to develop higher-level interfaces to standard Resource
//! Properties as part of WSRF.NET. This functionality could then be
//! provided to all clients and work on all services, not just
//! service/client pairs that had agreed upon their own specific
//! interfaces."
//!
//! [`ResourceProxy`] is that higher-level interface: typed get/set/
//! query/destroy over *any* WS-Resource, with no per-service code. The
//! testbed builds its typed job/directory wrappers on top of it.

use simclock::SimTime;
use wsrf_soap::{ns, EndpointReference, Envelope, MessageInfo, SoapFault};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{Element, QName};

use crate::porttypes::{wsrl_action, wsrp_action, XPATH_DIALECT};
use crate::properties::PropertyDoc;

/// A typed client-side handle to one WS-Resource, working against any
/// WSRF-compliant service through the standard port types alone.
#[derive(Clone)]
pub struct ResourceProxy<'a> {
    net: &'a InProcNetwork,
    epr: EndpointReference,
}

impl<'a> ResourceProxy<'a> {
    /// Wrap an EPR.
    pub fn new(net: &'a InProcNetwork, epr: EndpointReference) -> Self {
        ResourceProxy { net, epr }
    }

    /// The wrapped EPR.
    pub fn epr(&self) -> &EndpointReference {
        &self.epr
    }

    fn call(&self, action: String, body: Element) -> Result<Envelope, SoapFault> {
        let mut env = Envelope::new(body);
        MessageInfo::request(self.epr.clone(), action).apply(&mut env);
        let resp = self
            .net
            .call(&self.epr.address, env)
            .map_err(|e| SoapFault::server(e.to_string()))?;
        match resp.fault() {
            Some(f) => Err(f),
            None => Ok(resp),
        }
    }

    /// `GetResourceProperty` by (local or Clark) name, as text.
    pub fn get_text(&self, property: &str) -> Result<String, SoapFault> {
        let resp = self.call(
            wsrp_action("GetResourceProperty"),
            Element::new(ns::WSRP, "GetResourceProperty").text(property),
        )?;
        Ok(resp.body.text_content())
    }

    /// `GetResourceProperty` parsed as `f64`.
    pub fn get_f64(&self, property: &str) -> Result<f64, SoapFault> {
        self.get_text(property)?
            .trim()
            .parse()
            .map_err(|_| SoapFault::server(format!("property '{property}' is not a number")))
    }

    /// `GetResourceProperty` parsed as `i64`.
    pub fn get_i64(&self, property: &str) -> Result<i64, SoapFault> {
        self.get_text(property)?
            .trim()
            .parse()
            .map_err(|_| SoapFault::server(format!("property '{property}' is not an integer")))
    }

    /// `GetMultipleResourceProperties`: values in request order (text
    /// of each returned element).
    pub fn get_many(&self, properties: &[&str]) -> Result<Vec<String>, SoapFault> {
        let mut body = Element::new(ns::WSRP, "GetMultipleResourceProperties");
        for p in properties {
            body.push_child(Element::new(ns::WSRP, "ResourceProperty").text(*p));
        }
        let resp = self.call(wsrp_action("GetMultipleResourceProperties"), body)?;
        Ok(resp.body.elements().map(|e| e.text_content()).collect())
    }

    /// The whole property document, decoded.
    pub fn document(&self) -> Result<PropertyDoc, SoapFault> {
        let resp = self.call(
            wsrp_action("GetResourcePropertyDocument"),
            Element::new(ns::WSRP, "GetResourcePropertyDocument"),
        )?;
        let doc = resp
            .body
            .elements()
            .next()
            .ok_or_else(|| SoapFault::server("empty property document response"))?;
        Ok(PropertyDoc::from_document(doc))
    }

    /// `QueryResourceProperties` with an XPath-lite expression; returns
    /// the matched elements.
    pub fn query(&self, xpath: &str) -> Result<Vec<Element>, SoapFault> {
        let resp = self.call(
            wsrp_action("QueryResourceProperties"),
            Element::new(ns::WSRP, "QueryResourceProperties").child(
                Element::new(ns::WSRP, "QueryExpression")
                    .attr("Dialect", XPATH_DIALECT)
                    .text(xpath),
            ),
        )?;
        Ok(resp.body.elements().cloned().collect())
    }

    /// `SetResourceProperties` Update: replace a property with one
    /// text value.
    pub fn set_text(&self, property: QName, value: &str) -> Result<(), SoapFault> {
        self.call(
            wsrp_action("SetResourceProperties"),
            Element::new(ns::WSRP, "SetResourceProperties").child(
                Element::new(ns::WSRP, "Update").child(Element::with_name(property).text(value)),
            ),
        )?;
        Ok(())
    }

    /// `SetResourceProperties` Insert: append one element value.
    pub fn insert(&self, value: Element) -> Result<(), SoapFault> {
        self.call(
            wsrp_action("SetResourceProperties"),
            Element::new(ns::WSRP, "SetResourceProperties")
                .child(Element::new(ns::WSRP, "Insert").child(value)),
        )?;
        Ok(())
    }

    /// `SetResourceProperties` Delete: remove a property.
    pub fn delete_property(&self, property: &str) -> Result<(), SoapFault> {
        self.call(
            wsrp_action("SetResourceProperties"),
            Element::new(ns::WSRP, "SetResourceProperties")
                .child(Element::new(ns::WSRP, "Delete").attr("resourceProperty", property)),
        )?;
        Ok(())
    }

    /// WS-ResourceLifetime `Destroy`.
    pub fn destroy(&self) -> Result<(), SoapFault> {
        self.call(wsrl_action("Destroy"), Element::new(ns::WSRL, "Destroy"))?;
        Ok(())
    }

    /// WS-ResourceLifetime `SetTerminationTime` (absolute virtual
    /// time; `None` = never).
    pub fn set_termination_time(&self, at: Option<SimTime>) -> Result<(), SoapFault> {
        let text = at
            .map(|t| format!("{}", t.as_secs_f64()))
            .unwrap_or_default();
        self.call(
            wsrl_action("SetTerminationTime"),
            Element::new(ns::WSRL, "SetTerminationTime")
                .child(Element::new(ns::WSRL, "RequestedTerminationTime").text(text)),
        )?;
        Ok(())
    }

    /// Does the resource still exist? (A `GetResourcePropertyDocument`
    /// probe distinguishing NoSuchResource from other faults.)
    pub fn exists(&self) -> Result<bool, SoapFault> {
        match self.document() {
            Ok(_) => Ok(true),
            Err(f) if f.error_code() == Some("wsrf:NoSuchResource") => Ok(false),
            Err(f) => Err(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ServiceBuilder;
    use crate::store::MemoryStore;
    use simclock::Clock;
    use std::sync::Arc;
    use std::time::Duration;

    const U: &str = ns::UVACG;

    fn setup() -> (Clock, std::sync::Arc<InProcNetwork>, EndpointReference) {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = ServiceBuilder::new("P", "inproc://m/P", Arc::new(MemoryStore::new()))
            .build(clock.clone(), net.clone());
        svc.register(&net);
        let mut doc = PropertyDoc::new();
        doc.set_text(QName::new(U, "Status"), "Running");
        doc.set_f64(QName::new(U, "Cpu"), 2.5);
        doc.set_i64(QName::new(U, "Pid"), 7);
        let epr = svc.core().create_resource_with_key("r1", doc).unwrap();
        (clock, net, epr)
    }

    #[test]
    fn typed_getters() {
        let (_c, net, epr) = setup();
        let p = ResourceProxy::new(&net, epr);
        assert_eq!(p.get_text("Status").unwrap(), "Running");
        assert_eq!(p.get_f64("Cpu").unwrap(), 2.5);
        assert_eq!(p.get_i64("Pid").unwrap(), 7);
        assert!(p.get_f64("Status").is_err(), "type mismatch reported");
        assert_eq!(
            p.get_many(&["Status", "Pid"]).unwrap(),
            vec!["Running".to_string(), "7".to_string()]
        );
    }

    #[test]
    fn document_and_query() {
        let (_c, net, epr) = setup();
        let p = ResourceProxy::new(&net, epr);
        let doc = p.document().unwrap();
        assert_eq!(doc.len(), 3);
        let hits = p
            .query("/ResourcePropertyDocument[Status='Running']/Pid")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text_content(), "7");
    }

    #[test]
    fn mutations() {
        let (_c, net, epr) = setup();
        let p = ResourceProxy::new(&net, epr);
        p.set_text(QName::new(U, "Status"), "Exited").unwrap();
        assert_eq!(p.get_text("Status").unwrap(), "Exited");
        p.insert(Element::new(U, "Tag").text("x")).unwrap();
        p.insert(Element::new(U, "Tag").text("y")).unwrap();
        assert_eq!(p.document().unwrap().get_local("Tag").len(), 2);
        p.delete_property("Tag").unwrap();
        assert!(p.document().unwrap().get_local("Tag").is_empty());
    }

    #[test]
    fn lifetime_via_proxy() {
        let (clock, net, epr) = setup();
        let p = ResourceProxy::new(&net, epr);
        assert!(p.exists().unwrap());
        p.set_termination_time(Some(SimTime::from_secs(30)))
            .unwrap();
        clock.advance(Duration::from_secs(31));
        assert!(!p.exists().unwrap());

        let (_c2, net2, epr2) = setup();
        let p2 = ResourceProxy::new(&net2, epr2);
        p2.destroy().unwrap();
        assert!(!p2.exists().unwrap());
        assert!(p2.destroy().is_err(), "double destroy faults");
    }
}
