//! Durable WS-Resource state: a per-shard write-ahead log behind the
//! unchanged [`ResourceStore`] trait.
//!
//! The paper's §5 storage discussion (E7) stops at process lifetime:
//! every backend keeps state in memory, so a container restart loses
//! every WS-Resource. [`DurableStore`] closes that gap without touching
//! the trait: it wraps any inner backend and logs every mutation to
//! one append-only file per [`store`] shard (the same 16-way
//! `(service, key)` hash partitioning the in-memory rows use, so the
//! log never becomes a cross-shard serialization point).
//!
//! On-disk format, shared by logs and snapshots — one frame per op:
//!
//! ```text
//! [u32 le payload_len][u32 le crc32(payload)][payload]
//! payload = [u8 op][u16 le service_len][u16 le key_len][u32 le doc_len]
//!           [service bytes][key bytes][doc XML bytes]
//! ```
//!
//! Replay-on-open applies frames in order and stops at the first short
//! or CRC-mismatched frame — a torn tail from a crash mid-append is
//! indistinguishable from end-of-log, and no partial record is ever
//! applied. The surviving prefix is then made authoritative by
//! truncating the file to it, so later appends cannot hide behind
//! garbage.
//!
//! Every `snapshot_every` mutations a shard compacts itself: current
//! rows are written to `shard-NN.snap.tmp`, renamed over
//! `shard-NN.snap` (atomic on POSIX), and the log is truncated to
//! zero. A crash between the rename and the truncation is benign —
//! replaying the full log over the snapshot converges to the same
//! state because every frame application is last-writer-wins.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use wsrf_obs::{Counter, EventLog, MetricsRegistry};
use wsrf_xml::xpath::Path as XPath;
use wsrf_xml::QName;

use crate::properties::PropertyDoc;
use crate::store::{shard_of, ResourceStore, StoreError, SHARDS};

const OP_CREATE: u8 = 1;
const OP_SAVE: u8 = 2;
const OP_DESTROY: u8 = 3;

/// Default mutations per shard between snapshot + log truncation.
const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

fn doc_root() -> QName {
    QName::new("urn:wsrf-store", "Properties")
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — table built once, no external crate.
// ---------------------------------------------------------------------

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(crc32_table);
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------

fn encode_frame(op: u8, service: &str, key: &str, doc_xml: &str) -> Vec<u8> {
    let (s, k, d) = (service.as_bytes(), key.as_bytes(), doc_xml.as_bytes());
    let mut payload = Vec::with_capacity(9 + s.len() + k.len() + d.len());
    payload.push(op);
    payload.extend_from_slice(&(s.len() as u16).to_le_bytes());
    payload.extend_from_slice(&(k.len() as u16).to_le_bytes());
    payload.extend_from_slice(&(d.len() as u32).to_le_bytes());
    payload.extend_from_slice(s);
    payload.extend_from_slice(k);
    payload.extend_from_slice(d);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

struct Record {
    op: u8,
    service: String,
    key: String,
    doc_xml: String,
}

/// Decode the next frame at `buf[at..]`. Returns `Some((record, next))`
/// for a whole, CRC-clean, structurally valid frame; `None` for a torn
/// tail, a corrupted frame, or end-of-buffer — replay must stop there.
fn decode_frame(buf: &[u8], at: usize) -> Option<(Record, usize)> {
    let rest = buf.get(at..)?;
    if rest.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let want = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let payload = rest.get(8..8 + len)?;
    if crc32(payload) != want || payload.len() < 9 {
        return None;
    }
    let op = payload[0];
    let s_len = u16::from_le_bytes(payload[1..3].try_into().unwrap()) as usize;
    let k_len = u16::from_le_bytes(payload[3..5].try_into().unwrap()) as usize;
    let d_len = u32::from_le_bytes(payload[5..9].try_into().unwrap()) as usize;
    if 9 + s_len + k_len + d_len != payload.len() {
        return None;
    }
    let service = std::str::from_utf8(&payload[9..9 + s_len]).ok()?;
    let key = std::str::from_utf8(&payload[9 + s_len..9 + s_len + k_len]).ok()?;
    let doc_xml = std::str::from_utf8(&payload[9 + s_len + k_len..]).ok()?;
    Some((
        Record {
            op,
            service: service.to_string(),
            key: key.to_string(),
            doc_xml: doc_xml.to_string(),
        },
        at + 8 + len,
    ))
}

// ---------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------

struct ShardLog {
    file: File,
    /// Bytes of valid log currently on disk (appends go here).
    len: u64,
    /// Mutations since the last snapshot of this shard.
    dirty: u64,
}

struct WalMetrics {
    appends: Counter,
    bytes: Counter,
    snapshots: Counter,
    events: EventLog,
}

impl WalMetrics {
    fn noop() -> Self {
        WalMetrics {
            appends: Counter::noop(),
            bytes: Counter::noop(),
            snapshots: Counter::noop(),
            events: EventLog::noop(),
        }
    }

    fn from(registry: &MetricsRegistry) -> Self {
        WalMetrics {
            appends: registry.counter("store.wal.appends"),
            bytes: registry.counter("store.wal.bytes"),
            snapshots: registry.counter("store.wal.snapshots"),
            events: registry.events().clone(),
        }
    }
}

/// Durability wrapper: any [`ResourceStore`] gains crash-surviving
/// state via per-shard write-ahead logs and periodic snapshots. The
/// wrapped trait is unchanged — services and the container cannot tell
/// the difference, except that [`DurableStore::open`] on the same
/// directory restores every resource that was committed before a
/// crash.
///
/// For a [`crate::store::StructuredStore`] inner, declare the schemas
/// *before* calling `open` — replay creates rows through the normal
/// `create`/`save` path.
pub struct DurableStore {
    inner: Arc<dyn ResourceStore>,
    dir: PathBuf,
    logs: [Mutex<ShardLog>; SHARDS],
    services: RwLock<HashSet<String>>,
    snapshot_every: u64,
    metrics: WalMetrics,
}

impl DurableStore {
    /// Open (or create) the log directory, replay any surviving
    /// snapshot + log frames into `inner`, and truncate each log to
    /// its longest valid prefix.
    pub fn open(
        dir: impl Into<PathBuf>,
        inner: Arc<dyn ResourceStore>,
    ) -> std::io::Result<DurableStore> {
        Self::open_with(dir, inner, None)
    }

    /// [`DurableStore::open`] with metrics: `store.wal.*` counters
    /// track append traffic; `recovery.records` / `recovery.resources`
    /// record what this open replayed.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        inner: Arc<dyn ResourceStore>,
        registry: Option<&MetricsRegistry>,
    ) -> std::io::Result<DurableStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut services = HashSet::new();
        let mut replayed_records = 0u64;
        let mut logs = Vec::with_capacity(SHARDS);
        for shard in 0..SHARDS {
            // Snapshot first: it is the compacted prefix of the log.
            let snap_path = dir.join(format!("shard-{shard:02}.snap"));
            if let Ok(bytes) = std::fs::read(&snap_path) {
                let mut at = 0;
                while let Some((rec, next)) = decode_frame(&bytes, at) {
                    at = next;
                    replayed_records += 1;
                    services.insert(rec.service.clone());
                    apply(inner.as_ref(), &rec);
                }
            }
            // Then the live log on top.
            let log_path = dir.join(format!("shard-{shard:02}.log"));
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&log_path)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            let mut at = 0;
            while let Some((rec, next)) = decode_frame(&bytes, at) {
                at = next;
                replayed_records += 1;
                services.insert(rec.service.clone());
                apply(inner.as_ref(), &rec);
            }
            // Make the valid prefix authoritative: drop any torn tail
            // so future appends extend a clean log.
            if at as u64 != bytes.len() as u64 {
                file.set_len(at as u64)?;
            }
            file.seek(SeekFrom::Start(at as u64))?;
            logs.push(Mutex::new(ShardLog {
                file,
                len: at as u64,
                dirty: 0,
            }));
        }
        if let Some(registry) = registry {
            registry.counter("recovery.records").add(replayed_records);
            let restored: u64 = services.iter().map(|s| inner.list(s).len() as u64).sum();
            registry.counter("recovery.resources").add(restored);
        }
        let logs: [Mutex<ShardLog>; SHARDS] = logs
            .try_into()
            .unwrap_or_else(|_| unreachable!("SHARDS log files"));
        Ok(DurableStore {
            inner,
            dir,
            logs,
            services: RwLock::new(services),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            metrics: registry
                .map(WalMetrics::from)
                .unwrap_or_else(WalMetrics::noop),
        })
    }

    /// Set the per-shard mutation count between automatic snapshots.
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every.max(1);
        self
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn ResourceStore> {
        &self.inner
    }

    /// Directory holding the shard logs and snapshots.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Total bytes across the live shard logs (the log-overhead
    /// number E7 reports).
    pub fn log_bytes(&self) -> u64 {
        self.logs.iter().map(|l| l.lock().len).sum()
    }

    /// Force a snapshot + log truncation of every shard.
    pub fn snapshot_all(&self) -> std::io::Result<()> {
        for shard in 0..SHARDS {
            let mut log = self.logs[shard].lock();
            self.snapshot_shard(shard, &mut log)?;
        }
        Ok(())
    }

    fn serialize(doc: &PropertyDoc) -> String {
        doc.to_document(doc_root()).to_xml()
    }

    /// Append one committed mutation to the shard's log; the caller
    /// holds the shard lock and has already applied the op to `inner`.
    fn append(
        &self,
        log: &mut ShardLog,
        shard: usize,
        op: u8,
        service: &str,
        key: &str,
        doc_xml: &str,
    ) {
        let frame = encode_frame(op, service, key, doc_xml);
        // Log I/O failures must not desynchronize the in-memory store;
        // a testbed shard log that cannot be written degrades to
        // in-memory semantics for the ops it missed.
        if log.file.write_all(&frame).is_ok() {
            log.len += frame.len() as u64;
            log.dirty += 1;
            self.metrics.appends.inc();
            self.metrics.bytes.add(frame.len() as u64);
            if log.dirty >= self.snapshot_every {
                let _ = self.snapshot_shard(shard, log);
            }
        }
    }

    /// Write this shard's current rows to `shard-NN.snap` (atomically,
    /// via tmp + rename) and truncate its log.
    fn snapshot_shard(&self, shard: usize, log: &mut ShardLog) -> std::io::Result<()> {
        let mut out = Vec::new();
        let services: Vec<String> = self.services.read().iter().cloned().collect();
        for service in &services {
            for key in self.inner.list(service) {
                if shard_of(service, &key) != shard {
                    continue;
                }
                if let Ok(doc) = self.inner.load(service, &key) {
                    out.extend_from_slice(&encode_frame(
                        OP_CREATE,
                        service,
                        &key,
                        &Self::serialize(&doc),
                    ));
                }
            }
        }
        let snap = self.dir.join(format!("shard-{shard:02}.snap"));
        let tmp = self.dir.join(format!("shard-{shard:02}.snap.tmp"));
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, &snap)?;
        log.file.set_len(0)?;
        log.file.seek(SeekFrom::Start(0))?;
        log.len = 0;
        log.dirty = 0;
        self.metrics.snapshots.inc();
        // The WAL has no clock; events carry virtual time 0.
        let snap_bytes = out.len();
        self.metrics.events.emit(
            wsrf_obs::Severity::Info,
            wsrf_obs::EventKind::WalSnapshot,
            "wal",
            0,
            || format!("shard {shard:02} compacted to {snap_bytes} snapshot bytes"),
        );
        Ok(())
    }

    fn note_service(&self, service: &str) {
        if !self.services.read().contains(service) {
            self.services.write().insert(service.to_string());
        }
    }
}

/// Apply one replayed record to the inner store. Last-writer-wins and
/// tolerant of re-application (a crash between snapshot rename and log
/// truncation replays pre-snapshot frames over the snapshot).
fn apply(inner: &dyn ResourceStore, rec: &Record) {
    match rec.op {
        OP_CREATE | OP_SAVE => {
            let Ok(parsed) = wsrf_xml::parse(&rec.doc_xml) else {
                return;
            };
            let doc = PropertyDoc::from_document(&parsed);
            if inner.save(&rec.service, &rec.key, &doc).is_err() {
                let _ = inner.create(&rec.service, &rec.key, &doc);
            }
        }
        OP_DESTROY => {
            let _ = inner.destroy(&rec.service, &rec.key);
        }
        _ => {}
    }
}

impl ResourceStore for DurableStore {
    fn create(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        let shard = shard_of(service, key);
        let mut log = self.logs[shard].lock();
        self.inner.create(service, key, doc)?;
        self.note_service(service);
        self.append(
            &mut log,
            shard,
            OP_CREATE,
            service,
            key,
            &Self::serialize(doc),
        );
        Ok(())
    }

    fn load(&self, service: &str, key: &str) -> Result<PropertyDoc, StoreError> {
        self.inner.load(service, key)
    }

    fn save(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        let shard = shard_of(service, key);
        let mut log = self.logs[shard].lock();
        self.inner.save(service, key, doc)?;
        self.append(
            &mut log,
            shard,
            OP_SAVE,
            service,
            key,
            &Self::serialize(doc),
        );
        Ok(())
    }

    fn destroy(&self, service: &str, key: &str) -> Result<(), StoreError> {
        let shard = shard_of(service, key);
        let mut log = self.logs[shard].lock();
        self.inner.destroy(service, key)?;
        self.append(&mut log, shard, OP_DESTROY, service, key, "");
        Ok(())
    }

    fn exists(&self, service: &str, key: &str) -> bool {
        self.inner.exists(service, key)
    }

    fn list(&self, service: &str) -> Vec<String> {
        self.inner.list(service)
    }

    fn query(&self, service: &str, path: &XPath) -> Vec<String> {
        self.inner.query(service, path)
    }

    fn backend_name(&self) -> &'static str {
        "durable"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn q(local: &str) -> QName {
        QName::new("urn:test", local)
    }

    fn doc(status: &str) -> PropertyDoc {
        let mut d = PropertyDoc::new();
        d.set_text(q("Status"), status);
        d
    }

    /// Unique scratch directory; removed on drop.
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("wsrf-wal-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn reopen(dir: &std::path::Path) -> DurableStore {
        DurableStore::open(dir, Arc::new(MemoryStore::new())).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn state_survives_reopen() {
        let t = TempDir::new("reopen");
        {
            let s = reopen(&t.0);
            s.create("svc", "a", &doc("Running")).unwrap();
            s.create("svc", "b", &doc("Running")).unwrap();
            let mut d = s.load("svc", "a").unwrap();
            d.set_text(q("Status"), "Exited");
            s.save("svc", "a", &d).unwrap();
            s.destroy("svc", "b").unwrap();
        }
        let s = reopen(&t.0);
        assert_eq!(
            s.load("svc", "a").unwrap().text(&q("Status")).unwrap(),
            "Exited"
        );
        assert!(!s.exists("svc", "b"));
        assert_eq!(s.list("svc"), ["a"]);
    }

    #[test]
    fn torn_tail_is_dropped_and_log_stays_appendable() {
        let t = TempDir::new("torn");
        {
            let s = reopen(&t.0);
            s.create("svc", "a", &doc("Running")).unwrap();
        }
        // Append garbage to every shard log: a torn half-frame.
        for shard in 0..SHARDS {
            let p = t.0.join(format!("shard-{shard:02}.log"));
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        }
        {
            let s = reopen(&t.0);
            assert!(s.exists("svc", "a"));
            s.create("svc", "c", &doc("Running")).unwrap();
        }
        // The torn bytes were truncated away, so the new record is
        // visible after another reopen.
        let s = reopen(&t.0);
        assert!(s.exists("svc", "a"));
        assert!(s.exists("svc", "c"));
    }

    #[test]
    fn snapshot_truncates_log_and_preserves_state() {
        let t = TempDir::new("snap");
        {
            let s = reopen(&t.0).snapshot_every(4);
            for i in 0..32 {
                s.create("svc", &format!("k{i}"), &doc("Running")).unwrap();
            }
            let before = s.log_bytes();
            assert!(before > 0);
            s.snapshot_all().unwrap();
            assert_eq!(s.log_bytes(), 0, "snapshot must truncate every log");
        }
        let s = reopen(&t.0);
        assert_eq!(s.list("svc").len(), 32);
    }

    #[test]
    fn destroy_before_crash_does_not_resurrect() {
        let t = TempDir::new("destroy");
        {
            let s = reopen(&t.0).snapshot_every(2);
            s.create("svc", "gone", &doc("Running")).unwrap();
            s.snapshot_all().unwrap();
            s.destroy("svc", "gone").unwrap();
        }
        let s = reopen(&t.0);
        assert!(!s.exists("svc", "gone"), "destroyed resource came back");
    }

    #[test]
    fn replay_over_unclean_snapshot_converges() {
        // Simulate a crash between snapshot rename and log truncation:
        // the log still holds pre-snapshot frames. Replaying them over
        // the snapshot must converge to the same state.
        let t = TempDir::new("unclean");
        let log_copies: Vec<Vec<u8>>;
        {
            let s = reopen(&t.0);
            s.create("svc", "a", &doc("One")).unwrap();
            s.destroy("svc", "a").unwrap();
            s.create("svc", "a", &doc("Two")).unwrap();
            log_copies = (0..SHARDS)
                .map(|i| std::fs::read(t.0.join(format!("shard-{i:02}.log"))).unwrap())
                .collect();
            s.snapshot_all().unwrap();
        }
        // Restore the pre-snapshot logs next to the fresh snapshots.
        for (i, bytes) in log_copies.iter().enumerate() {
            std::fs::write(t.0.join(format!("shard-{i:02}.log")), bytes).unwrap();
        }
        let s = reopen(&t.0);
        assert_eq!(s.list("svc"), ["a"]);
        assert_eq!(
            s.load("svc", "a").unwrap().text(&q("Status")).unwrap(),
            "Two"
        );
    }

    #[test]
    fn wal_metrics_are_recorded() {
        let t = TempDir::new("metrics");
        let reg = MetricsRegistry::enabled();
        {
            let s =
                DurableStore::open_with(&t.0, Arc::new(MemoryStore::new()), Some(&reg)).unwrap();
            s.create("svc", "a", &doc("Running")).unwrap();
            s.save("svc", "a", &doc("Exited")).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("store.wal.appends"), Some(2));
        assert!(snap.counter("store.wal.bytes").unwrap() > 0);

        let reg2 = MetricsRegistry::enabled();
        let _s = DurableStore::open_with(&t.0, Arc::new(MemoryStore::new()), Some(&reg2)).unwrap();
        let snap2 = reg2.snapshot();
        assert_eq!(snap2.counter("recovery.records"), Some(2));
        assert_eq!(snap2.counter("recovery.resources"), Some(1));
    }
}
