//! Property-based tests: all three resource stores must agree with
//! each other (and with a model HashMap) on every operation sequence,
//! and documents must survive each backend's encoding unchanged.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use wsrf_core::store::{
    BlobStore, ColumnType, MemoryStore, ResourceStore, StoreError, StructuredStore,
};
use wsrf_core::PropertyDoc;
use wsrf_xml::QName;

const NS: &str = "urn:prop-test";

fn q(local: &str) -> QName {
    QName::new(NS, local)
}

/// Documents drawn from a fixed scalar schema (so the structured store
/// can hold them too).
fn doc_strategy() -> impl Strategy<Value = PropertyDoc> {
    (
        proptest::option::of("[ -~]{0,24}"),
        proptest::option::of(-1e9f64..1e9),
        proptest::option::of(any::<i32>()),
    )
        .prop_map(|(s, f, i)| {
            let mut d = PropertyDoc::new();
            if let Some(s) = s {
                d.set_text(q("Status"), s);
            }
            if let Some(f) = f {
                d.set_f64(q("Cpu"), f);
            }
            if let Some(i) = i {
                d.set_i64(q("Pid"), i as i64);
            }
            d
        })
}

#[derive(Debug, Clone)]
enum Op {
    Create(u8, PropertyDoc),
    Save(u8, PropertyDoc),
    Load(u8),
    Destroy(u8),
    List,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), doc_strategy()).prop_map(|(k, d)| Op::Create(k % 8, d)),
        (any::<u8>(), doc_strategy()).prop_map(|(k, d)| Op::Save(k % 8, d)),
        any::<u8>().prop_map(|k| Op::Load(k % 8)),
        any::<u8>().prop_map(|k| Op::Destroy(k % 8)),
        Just(Op::List),
    ]
}

fn schema() -> Vec<(QName, ColumnType)> {
    vec![
        (q("Status"), ColumnType::Text),
        (q("Cpu"), ColumnType::Float),
        (q("Pid"), ColumnType::Int),
    ]
}

fn stores() -> Vec<(&'static str, Arc<dyn ResourceStore>)> {
    vec![
        ("memory", Arc::new(MemoryStore::new())),
        ("blob", Arc::new(BlobStore::new())),
        ("structured", {
            let s = StructuredStore::new();
            s.define_schema("svc", schema());
            Arc::new(s)
        }),
    ]
}

/// Compare docs modulo float text formatting (the structured store
/// re-renders floats; `set_f64` formatting is canonical for all
/// backends, so equality should be exact — assert that).
fn assert_doc_eq(a: &PropertyDoc, b: &PropertyDoc, ctx: &str) {
    assert_eq!(a, b, "{ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_backends_agree_with_the_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        for (name, store) in stores() {
            let mut model: HashMap<u8, PropertyDoc> = HashMap::new();
            for op in &ops {
                match op {
                    Op::Create(k, d) => {
                        let res = store.create("svc", &k.to_string(), d);
                        if model.contains_key(k) {
                            prop_assert_eq!(
                                res,
                                Err(StoreError::AlreadyExists(k.to_string())),
                                "{}", name
                            );
                        } else {
                            prop_assert!(res.is_ok(), "{name}: {res:?}");
                            model.insert(*k, d.clone());
                        }
                    }
                    Op::Save(k, d) => {
                        let res = store.save("svc", &k.to_string(), d);
                        if model.contains_key(k) {
                            prop_assert!(res.is_ok(), "{name}: {res:?}");
                            model.insert(*k, d.clone());
                        } else {
                            prop_assert_eq!(res, Err(StoreError::NotFound(k.to_string())));
                        }
                    }
                    Op::Load(k) => {
                        match (store.load("svc", &k.to_string()), model.get(k)) {
                            (Ok(got), Some(want)) => assert_doc_eq(&got, want, name),
                            (Err(StoreError::NotFound(_)), None) => {}
                            (got, want) => {
                                return Err(TestCaseError::fail(format!(
                                    "{name}: load mismatch {got:?} vs {want:?}"
                                )))
                            }
                        }
                    }
                    Op::Destroy(k) => {
                        let res = store.destroy("svc", &k.to_string());
                        if model.remove(k).is_some() {
                            prop_assert!(res.is_ok());
                        } else {
                            prop_assert_eq!(res, Err(StoreError::NotFound(k.to_string())));
                        }
                    }
                    Op::List => {
                        let mut got = store.list("svc");
                        got.sort();
                        let mut want: Vec<String> =
                            model.keys().map(|k| k.to_string()).collect();
                        want.sort();
                        prop_assert_eq!(got, want, "{}", name);
                    }
                }
                // exists() always agrees.
                for k in 0u8..8 {
                    prop_assert_eq!(
                        store.exists("svc", &k.to_string()),
                        model.contains_key(&k),
                        "{} exists({})", name, k
                    );
                }
            }
        }
    }

    #[test]
    fn documents_roundtrip_every_backend(d in doc_strategy()) {
        for (name, store) in stores() {
            store.create("svc", "k", &d).unwrap();
            let back = store.load("svc", "k").unwrap();
            assert_doc_eq(&back, &d, name);
        }
    }

    #[test]
    fn queries_agree_across_backends(docs in proptest::collection::vec(doc_strategy(), 1..12)) {
        let path = wsrf_xml::xpath::Path::parse("//Status").unwrap();
        let mut expected: Vec<String> = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            if d.contains(&q("Status")) {
                expected.push(i.to_string());
            }
        }
        expected.sort();
        for (name, store) in stores() {
            for (i, d) in docs.iter().enumerate() {
                store.create("svc", &i.to_string(), d).unwrap();
            }
            let mut got = store.query("svc", &path);
            got.sort();
            prop_assert_eq!(&got, &expected, "{}", name);
        }
    }
}
