//! Minimal URI handling for the testbed's address schemes.
//!
//! The paper's job-set descriptions mix several schemes:
//! `local://C:\file1` (the client's own file system, served over
//! WSE-TCP), `job1://output2` (a dependency on another job's output),
//! HTTP service addresses, and WSE's `soap.tcp` scheme for bulk
//! transfer. Our transports add `inproc` for the simulated campus
//! network.

use std::fmt;

/// A parsed `scheme://authority/path` URI.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Uri {
    /// The scheme, lowercased (e.g. `http`, `soap.tcp`, `inproc`,
    /// `local`, or a job name like `job1`).
    pub scheme: String,
    /// The authority (host, `host:port`, or machine name). May be the
    /// path itself for opaque schemes like `local://C:\x`.
    pub authority: String,
    /// The path after the authority, without the leading `/`.
    pub path: String,
}

impl Uri {
    /// Parse a URI. Fails only when no `://` separator is present.
    pub fn parse(s: &str) -> Option<Uri> {
        let (scheme, rest) = s.split_once("://")?;
        if scheme.is_empty() {
            return None;
        }
        let (authority, path) = match rest.split_once('/') {
            Some((a, p)) => (a.to_string(), p.to_string()),
            None => (rest.to_string(), String::new()),
        };
        Some(Uri {
            scheme: scheme.to_ascii_lowercase(),
            authority,
            path,
        })
    }

    /// Reassemble the textual form.
    pub fn to_uri_string(&self) -> String {
        if self.path.is_empty() {
            format!("{}://{}", self.scheme, self.authority)
        } else {
            format!("{}://{}/{}", self.scheme, self.authority, self.path)
        }
    }

    /// Build an URI from parts.
    pub fn build(scheme: &str, authority: &str, path: &str) -> Uri {
        Uri {
            scheme: scheme.to_ascii_lowercase(),
            authority: authority.to_string(),
            path: path.trim_start_matches('/').to_string(),
        }
    }

    /// Everything after `scheme://` (used by opaque schemes such as
    /// `local://C:\dir\file`, where splitting on `/` is meaningless).
    pub fn opaque(&self) -> String {
        if self.path.is_empty() {
            self.authority.clone()
        } else {
            format!("{}/{}", self.authority, self.path)
        }
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_uri_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_service_addresses() {
        let u = Uri::parse("inproc://machine01/ExecutionService").unwrap();
        assert_eq!(u.scheme, "inproc");
        assert_eq!(u.authority, "machine01");
        assert_eq!(u.path, "ExecutionService");
        assert_eq!(u.to_uri_string(), "inproc://machine01/ExecutionService");
    }

    #[test]
    fn parses_host_port() {
        let u = Uri::parse("soap.tcp://127.0.0.1:9001/fs").unwrap();
        assert_eq!(u.scheme, "soap.tcp");
        assert_eq!(u.authority, "127.0.0.1:9001");
    }

    #[test]
    fn parses_job_scheme() {
        let u = Uri::parse("job1://output2").unwrap();
        assert_eq!(u.scheme, "job1");
        assert_eq!(u.opaque(), "output2");
    }

    #[test]
    fn parses_local_scheme_opaquely() {
        let u = Uri::parse(r"local://C:\data\file1").unwrap();
        assert_eq!(u.scheme, "local");
        assert_eq!(u.opaque(), r"C:\data\file1");
    }

    #[test]
    fn authority_only() {
        let u = Uri::parse("http://host").unwrap();
        assert_eq!(u.path, "");
        assert_eq!(u.to_uri_string(), "http://host");
    }

    #[test]
    fn rejects_schemeless() {
        assert!(Uri::parse("no-scheme-here").is_none());
        assert!(Uri::parse("://x").is_none());
    }

    #[test]
    fn scheme_is_case_insensitive() {
        assert_eq!(Uri::parse("HTTP://h/x").unwrap().scheme, "http");
    }

    #[test]
    fn build_normalizes_leading_slash() {
        let u = Uri::build("inproc", "m1", "/Svc");
        assert_eq!(u.to_uri_string(), "inproc://m1/Svc");
    }
}
