//! SOAP envelopes.

use std::sync::atomic::{AtomicU64, Ordering};

use wsrf_xml::{parse, Element, LenSink, TreeWriter, XmlError, XmlSink};

use crate::fault::SoapFault;
use crate::ns;

/// Full envelope serializations performed so far (process-wide).
/// [`Envelope::wire_len`] does *not* count: it renders into a
/// byte-counting sink, which is the point — the tests use this counter
/// to prove the transports hit their render budgets (zero per inproc
/// exchange, one per direction on the socket transports).
static RENDERS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of full envelope renders ([`Envelope::write_into`]
/// / [`Envelope::to_xml`] calls). Test hook for the render-once wire
/// path invariant; see `tests/wirepath_renders.rs`.
pub fn render_count() -> u64 {
    RENDERS.load(Ordering::Relaxed)
}

/// A SOAP message: ordered header blocks plus exactly one body element.
///
/// The body holds the operation request/response (or a `<Fault>`); the
/// headers hold WS-Addressing, reference properties and WS-Security
/// blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Header blocks in order. Each is a top-level child of
    /// `<soap:Header>`.
    pub headers: Vec<Element>,
    /// The single child element of `<soap:Body>`.
    pub body: Element,
}

impl Envelope {
    /// An envelope with the given body and no headers.
    pub fn new(body: Element) -> Self {
        Envelope {
            headers: Vec::new(),
            body,
        }
    }

    /// Builder-style header append.
    pub fn with_header(mut self, header: Element) -> Self {
        self.headers.push(header);
        self
    }

    /// First header block with the given namespace/local name.
    pub fn header(&self, nsuri: &str, local: &str) -> Option<&Element> {
        self.headers.iter().find(|h| h.name.is(nsuri, local))
    }

    /// Remove and return the first matching header block.
    pub fn take_header(&mut self, nsuri: &str, local: &str) -> Option<Element> {
        let idx = self.headers.iter().position(|h| h.name.is(nsuri, local))?;
        Some(self.headers.remove(idx))
    }

    /// Whether the body is a SOAP `<Fault>`.
    pub fn is_fault(&self) -> bool {
        self.body.name.is(ns::SOAP_ENV, "Fault")
    }

    /// Decode the body as a [`SoapFault`], if it is one.
    pub fn fault(&self) -> Option<SoapFault> {
        if self.is_fault() {
            Some(SoapFault::from_element(&self.body))
        } else {
            None
        }
    }

    /// Build the `<soap:Envelope>` element tree.
    ///
    /// This deep-clones every header and the body. The wire path never
    /// needs the clone — [`Self::write_into`] streams the same document
    /// straight from `self.headers`/`self.body` — but the tree form is
    /// still useful for tests and message inspection.
    pub fn to_element(&self) -> Element {
        let mut env = Element::new(ns::SOAP_ENV, "Envelope");
        if !self.headers.is_empty() {
            let mut header = Element::new(ns::SOAP_ENV, "Header");
            for h in &self.headers {
                header.push_child(h.clone());
            }
            env.push_child(header);
        }
        env.push_child(Element::new(ns::SOAP_ENV, "Body").child(self.body.clone()));
        env
    }

    /// Stream the wire document into `out` without cloning the tree:
    /// the `<soap:Envelope>`/`<soap:Header>`/`<soap:Body>` scaffolding
    /// is written directly and the header/body subtrees are serialized
    /// in place. Byte-for-byte identical to the historical
    /// `to_element().to_document()` output.
    fn render<S: XmlSink>(&self, out: &mut S) {
        let mut w = TreeWriter::new(out);
        w.prolog();
        w.start(Some(ns::SOAP_ENV), "Envelope");
        if !self.headers.is_empty() {
            w.start(Some(ns::SOAP_ENV), "Header");
            for h in &self.headers {
                w.element(h);
            }
            w.end();
        }
        w.start(Some(ns::SOAP_ENV), "Body");
        w.element(&self.body);
        w.end();
        w.end();
    }

    /// Serialize the wire document into a reusable buffer (appends; the
    /// caller clears). One full render, zero clones.
    pub fn write_into<S: XmlSink>(&self, out: &mut S) {
        RENDERS.fetch_add(1, Ordering::Relaxed);
        self.render(out);
    }

    /// Exact wire size in bytes — `to_xml().len()` computed by running
    /// the serializer against a counting sink. No allocation, no clone,
    /// and it does not count as a render (see [`render_count`]).
    pub fn wire_len(&self) -> usize {
        let mut count = LenSink::new();
        self.render(&mut count);
        count.len()
    }

    /// Serialize to the on-the-wire document string. Thin compatibility
    /// wrapper over [`Self::write_into`].
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(512);
        self.write_into(&mut out);
        out
    }

    /// Decode an envelope from an element tree.
    pub fn from_element(root: &Element) -> Result<Envelope, XmlError> {
        if !root.name.is(ns::SOAP_ENV, "Envelope") {
            return Err(XmlError::new(format!(
                "expected soap:Envelope, found {}",
                root.name
            )));
        }
        let headers = match root.find(ns::SOAP_ENV, "Header") {
            Some(h) => h.elements().cloned().collect(),
            None => Vec::new(),
        };
        let body_el = root.expect(ns::SOAP_ENV, "Body")?;
        let body = body_el
            .elements()
            .next()
            .cloned()
            .ok_or_else(|| XmlError::new("soap:Body must contain one element"))?;
        Ok(Envelope { headers, body })
    }

    /// Parse an envelope from its wire form.
    pub fn parse(xml: &str) -> Result<Envelope, XmlError> {
        Envelope::from_element(&parse(xml)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrf_xml::Element;

    fn request() -> Envelope {
        Envelope::new(Element::new("urn:svc", "Run").attr("job", "j1"))
            .with_header(Element::new(crate::ns::WSA, "Action").text("urn:svc/Run"))
            .with_header(Element::new("urn:custom", "Tag").text("x"))
    }

    #[test]
    fn roundtrips_through_wire_form() {
        let env = request();
        let back = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn header_lookup_and_removal() {
        let mut env = request();
        assert!(env.header(crate::ns::WSA, "Action").is_some());
        let taken = env.take_header("urn:custom", "Tag").unwrap();
        assert_eq!(taken.text_content(), "x");
        assert!(env.header("urn:custom", "Tag").is_none());
        assert_eq!(env.headers.len(), 1);
    }

    #[test]
    fn headerless_envelope_omits_header_element() {
        let env = Envelope::new(Element::local("Ping"));
        let xml = env.to_xml();
        assert!(!xml.contains("Header"), "{}", xml);
        assert_eq!(Envelope::parse(&xml).unwrap(), env);
    }

    #[test]
    fn rejects_non_envelope_roots() {
        assert!(Envelope::parse("<a/>").is_err());
    }

    #[test]
    fn rejects_empty_body() {
        let xml = format!(
            "<e:Envelope xmlns:e=\"{}\"><e:Body/></e:Envelope>",
            crate::ns::SOAP_ENV
        );
        assert!(Envelope::parse(&xml).is_err());
    }

    #[test]
    fn fault_detection() {
        let env = Envelope::new(Element::new(crate::ns::SOAP_ENV, "Fault"));
        assert!(env.is_fault());
        assert!(!request().is_fault());
        assert!(request().fault().is_none());
    }
}
