//! # wsrf-soap
//!
//! SOAP 1.1-style envelopes, WS-Addressing and fault types — the
//! message layer the WSRF specifications are defined against.
//!
//! The paper's testbed routes every interaction through SOAP messages
//! whose **headers** carry the interesting information: the
//! WS-Addressing `<To>` and `<Action>` elements select the service and
//! operation, and the `<ReferenceProperties>` of the targeted
//! [`EndpointReference`] name the specific WS-Resource ("WSRF.NET uses
//! the value of the EndpointReference in the `<To>` header of the
//! invocation SOAP message to interact with a particular resource").
//! This crate reproduces exactly that machinery:
//!
//! * [`Envelope`] — header blocks + a body element, with wire
//!   (de)serialization,
//! * [`EndpointReference`] — WS-Addressing EPRs with reference
//!   properties, the universal name for WS-Resources,
//! * [`MessageInfo`] — the addressing headers stamped on each message,
//! * [`TraceContext`] — the W3C-trace-context-style header that
//!   carries a distributed-tracing span identity hop to hop,
//! * [`SoapFault`] / [`BaseFault`] — SOAP faults carrying
//!   WS-BaseFaults payloads with cause chains,
//! * [`Uri`] — tiny scheme/authority/path splitter for the testbed's
//!   `http`, `soap.tcp`, `inproc`, `local` and `jobN` URI schemes.

// WS-BaseFaults carries timestamps, originator EPRs and cause chains
// by design, so fault values are large; handlers are not hot paths and
// faults are exceptional, so we keep them by value rather than boxing
// every error site.
#![allow(clippy::result_large_err)]

pub mod addressing;
pub mod envelope;
pub mod fault;
pub mod lazy;
pub mod ns;
pub mod uri;

pub use addressing::{EndpointReference, MessageInfo, TraceContext};
pub use envelope::{render_count, Envelope};
pub use fault::{BaseFault, SoapFault};
pub use lazy::LazyEnvelope;
pub use uri::Uri;

/// Result alias for message-layer operations.
pub type Result<T> = std::result::Result<T, SoapFault>;
