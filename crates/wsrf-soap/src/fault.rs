//! SOAP faults and WS-BaseFaults.
//!
//! WS-BaseFaults gives every WSRF fault a common shape — timestamp,
//! originator EPR, error code, human description and a *cause chain* —
//! so that, e.g., a Scheduler fault can carry the Execution Service
//! fault that caused it, which in turn carries the ProcSpawn fault.

use wsrf_xml::Element;

use crate::addressing::EndpointReference;
use crate::envelope::Envelope;
use crate::ns;

/// A WS-BaseFaults fault payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseFault {
    /// Virtual-time timestamp (seconds since the grid epoch), stored
    /// textually because it crosses the wire.
    pub timestamp: String,
    /// The service/resource that raised the fault.
    pub originator: Option<EndpointReference>,
    /// Machine-readable error code, e.g. `uvacg:NoSuchJob`.
    pub error_code: String,
    /// Human-readable description.
    pub description: String,
    /// The fault that caused this one, if any.
    pub cause: Option<Box<BaseFault>>,
}

impl BaseFault {
    /// A new fault with the given code and description.
    pub fn new(error_code: impl Into<String>, description: impl Into<String>) -> Self {
        BaseFault {
            timestamp: String::new(),
            originator: None,
            error_code: error_code.into(),
            description: description.into(),
            cause: None,
        }
    }

    /// Builder: set the originator EPR.
    pub fn from_originator(mut self, epr: EndpointReference) -> Self {
        self.originator = Some(epr);
        self
    }

    /// Builder: set the virtual timestamp (seconds).
    pub fn at(mut self, seconds: f64) -> Self {
        self.timestamp = format!("{seconds:.6}");
        self
    }

    /// Builder: chain a causing fault.
    pub fn caused_by(mut self, cause: BaseFault) -> Self {
        self.cause = Some(Box::new(cause));
        self
    }

    /// Depth of the cause chain (1 for a fault with no cause).
    pub fn chain_len(&self) -> usize {
        1 + self.cause.as_deref().map_or(0, BaseFault::chain_len)
    }

    /// The root cause (deepest fault in the chain).
    pub fn root_cause(&self) -> &BaseFault {
        self.cause.as_deref().map_or(self, BaseFault::root_cause)
    }

    /// Serialize as a `<wsbf:BaseFault>` element.
    pub fn to_element(&self) -> Element {
        self.to_element_named("BaseFault")
    }

    fn to_element_named(&self, local: &str) -> Element {
        let mut e = Element::new(ns::WSBF, local);
        e.push_child(Element::new(ns::WSBF, "Timestamp").text(&self.timestamp));
        if let Some(orig) = &self.originator {
            e.push_child(orig.to_element_named(ns::WSBF, "Originator"));
        }
        e.push_child(Element::new(ns::WSBF, "ErrorCode").text(&self.error_code));
        e.push_child(Element::new(ns::WSBF, "Description").text(&self.description));
        if let Some(cause) = &self.cause {
            e.push_child(cause.to_element_named("FaultCause"));
        }
        e
    }

    /// Decode from a `<BaseFault>`/`<FaultCause>` element.
    pub fn from_element(e: &Element) -> Self {
        BaseFault {
            timestamp: e
                .find(ns::WSBF, "Timestamp")
                .map(Element::text_content)
                .unwrap_or_default(),
            originator: e
                .find(ns::WSBF, "Originator")
                .and_then(|o| EndpointReference::from_element(o).ok()),
            error_code: e
                .find(ns::WSBF, "ErrorCode")
                .map(Element::text_content)
                .unwrap_or_default(),
            description: e
                .find(ns::WSBF, "Description")
                .map(Element::text_content)
                .unwrap_or_default(),
            cause: e
                .find(ns::WSBF, "FaultCause")
                .map(|c| Box::new(BaseFault::from_element(c))),
        }
    }
}

impl std::fmt::Display for BaseFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.error_code, self.description)?;
        if let Some(c) = &self.cause {
            write!(f, " <- {}", c)?;
        }
        Ok(())
    }
}

impl std::error::Error for BaseFault {}

/// A SOAP-level fault, optionally wrapping a [`BaseFault`] detail.
#[derive(Debug, Clone, PartialEq)]
pub struct SoapFault {
    /// `faultcode`, e.g. `Client` or `Server`.
    pub code: String,
    /// `faultstring` — short human description.
    pub reason: String,
    /// WS-BaseFaults detail, when present.
    pub detail: Option<BaseFault>,
}

impl SoapFault {
    /// A receiver-side (`Server`) fault.
    pub fn server(reason: impl Into<String>) -> Self {
        SoapFault {
            code: "Server".into(),
            reason: reason.into(),
            detail: None,
        }
    }

    /// A sender-side (`Client`) fault.
    pub fn client(reason: impl Into<String>) -> Self {
        SoapFault {
            code: "Client".into(),
            reason: reason.into(),
            detail: None,
        }
    }

    /// Wrap a [`BaseFault`] as the detail of a `Server` fault.
    pub fn from_base(base: BaseFault) -> Self {
        SoapFault {
            code: "Server".into(),
            reason: format!("[{}] {}", base.error_code, base.description),
            detail: Some(base),
        }
    }

    /// The WS-BaseFaults error code, when a detail is attached.
    pub fn error_code(&self) -> Option<&str> {
        self.detail.as_ref().map(|d| d.error_code.as_str())
    }

    /// Build a `<soap:Fault>` body element.
    pub fn to_element(&self) -> Element {
        let mut f = Element::new(ns::SOAP_ENV, "Fault");
        f.push_child(Element::local("faultcode").text(&self.code));
        f.push_child(Element::local("faultstring").text(&self.reason));
        if let Some(d) = &self.detail {
            f.push_child(Element::local("detail").child(d.to_element()));
        }
        f
    }

    /// Wrap into a complete fault envelope.
    pub fn to_envelope(&self) -> Envelope {
        Envelope::new(self.to_element())
    }

    /// Decode from a `<soap:Fault>` element (lenient: missing parts
    /// become empty strings).
    pub fn from_element(e: &Element) -> Self {
        let code = e
            .find_local("faultcode")
            .map(Element::text_content)
            .unwrap_or_default();
        let reason = e
            .find_local("faultstring")
            .map(Element::text_content)
            .unwrap_or_default();
        let detail = e
            .find_local("detail")
            .and_then(|d| d.find(ns::WSBF, "BaseFault"))
            .map(BaseFault::from_element);
        SoapFault {
            code,
            reason,
            detail,
        }
    }
}

impl std::fmt::Display for SoapFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "soap fault ({}): {}", self.code, self.reason)?;
        if let Some(d) = &self.detail {
            write!(f, " — {}", d)?;
        }
        Ok(())
    }
}

impl std::error::Error for SoapFault {}

impl From<BaseFault> for SoapFault {
    fn from(b: BaseFault) -> Self {
        SoapFault::from_base(b)
    }
}

impl From<wsrf_xml::XmlError> for SoapFault {
    fn from(e: wsrf_xml::XmlError) -> Self {
        SoapFault::client(format!("malformed message: {}", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chained() -> BaseFault {
        BaseFault::new("uvacg:JobSetFailed", "job set had a failing job")
            .at(12.5)
            .from_originator(EndpointReference::service("inproc://sched/Scheduler"))
            .caused_by(
                BaseFault::new("uvacg:JobFailed", "job exited nonzero").caused_by(BaseFault::new(
                    "uvacg:BadCredentials",
                    "user unknown on machine",
                )),
            )
    }

    #[test]
    fn cause_chain_roundtrips() {
        let f = chained();
        assert_eq!(f.chain_len(), 3);
        let back = BaseFault::from_element(&f.to_element());
        assert_eq!(back, f);
        assert_eq!(back.root_cause().error_code, "uvacg:BadCredentials");
    }

    #[test]
    fn soap_fault_roundtrips_with_detail() {
        let sf = SoapFault::from_base(chained());
        let env = sf.to_envelope();
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert!(parsed.is_fault());
        let back = parsed.fault().unwrap();
        assert_eq!(back, sf);
        assert_eq!(back.error_code(), Some("uvacg:JobSetFailed"));
    }

    #[test]
    fn display_renders_chain() {
        let s = chained().to_string();
        assert!(s.contains("JobSetFailed"), "{s}");
        assert!(s.contains("<- [uvacg:JobFailed]"), "{s}");
        assert!(s.contains("BadCredentials"), "{s}");
    }

    #[test]
    fn simple_faults_have_no_detail() {
        let sf = SoapFault::client("bad request");
        let back = SoapFault::from_element(&sf.to_element());
        assert_eq!(back, sf);
        assert_eq!(back.error_code(), None);
    }

    #[test]
    fn xml_errors_convert_to_client_faults() {
        let sf: SoapFault = wsrf_xml::XmlError::new("boom").into();
        assert_eq!(sf.code, "Client");
        assert!(sf.reason.contains("boom"));
    }
}
