//! WS-Addressing: endpoint references and message-addressing headers.
//!
//! Endpoint references (EPRs) are the linchpin of WSRF: a WS-Resource
//! is named by an EPR whose `<ReferenceProperties>` carry an opaque key
//! that the service resolves to stored state. The paper's services
//! exchange EPRs constantly — the Scheduler "fills in" the EPRs of
//! yet-to-be-created job output directories, the Execution Service
//! broadcasts each job's EPR so the client can poll it, and the File
//! System Service is told which EPR to fetch each input file from.

use wsrf_xml::{Element, XmlError};

use crate::envelope::Envelope;
use crate::ns;

/// A WS-Addressing endpoint reference.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EndpointReference {
    /// The `<Address>` URI: transport scheme + authority + service path.
    pub address: String,
    /// `<ReferenceProperties>` children: opaque elements the *issuing*
    /// service uses to identify one WS-Resource. Stored in Clark-name /
    /// text form because the testbed only ever uses simple keys.
    pub reference_properties: Vec<(String, String)>,
}

impl EndpointReference {
    /// An EPR with no reference properties (a plain service endpoint).
    pub fn service(address: impl Into<String>) -> Self {
        EndpointReference {
            address: address.into(),
            reference_properties: Vec::new(),
        }
    }

    /// An EPR naming one resource of a service, keyed by a single
    /// reference property.
    pub fn resource(
        address: impl Into<String>,
        key_name: impl Into<String>,
        key_value: impl Into<String>,
    ) -> Self {
        EndpointReference {
            address: address.into(),
            reference_properties: vec![(key_name.into(), key_value.into())],
        }
    }

    /// Add a reference property (builder style).
    pub fn with_property(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.reference_properties.push((name.into(), value.into()));
        self
    }

    /// Look up a reference property by (local) name.
    pub fn property(&self, name: &str) -> Option<&str> {
        self.reference_properties
            .iter()
            .find(|(n, _)| n == name || n.ends_with(&format!("}}{}", name)))
            .map(|(_, v)| v.as_str())
    }

    /// The conventional resource key: the *first* reference property's
    /// value, or `None` for plain service EPRs.
    pub fn resource_key(&self) -> Option<&str> {
        self.reference_properties.first().map(|(_, v)| v.as_str())
    }

    /// Serialize as an element with the given qualified name (EPRs are
    /// embedded under many different element names: `<ReplyTo>`,
    /// `<ConsumerReference>`, a response's `<ResourceEpr>`, ...).
    pub fn to_element_named(&self, nsuri: &str, local: &str) -> Element {
        let mut e = Element::new(nsuri, local);
        e.push_child(Element::new(ns::WSA, "Address").text(&self.address));
        if !self.reference_properties.is_empty() {
            let mut rp = Element::new(ns::WSA, "ReferenceProperties");
            for (n, v) in &self.reference_properties {
                let name = wsrf_xml::QName::from_clark(n);
                rp.push_child(Element::with_name(name).text(v));
            }
            e.push_child(rp);
        }
        e
    }

    /// Serialize as `<wsa:EndpointReference>`.
    pub fn to_element(&self) -> Element {
        self.to_element_named(ns::WSA, "EndpointReference")
    }

    /// Decode from any element with WS-Addressing EPR structure.
    pub fn from_element(e: &Element) -> Result<Self, XmlError> {
        let address = e.expect_text(ns::WSA, "Address")?;
        let mut reference_properties = Vec::new();
        if let Some(rp) = e.find(ns::WSA, "ReferenceProperties") {
            for c in rp.elements() {
                reference_properties.push((c.name.to_string(), c.text_content()));
            }
        }
        Ok(EndpointReference {
            address,
            reference_properties,
        })
    }
}

impl std::fmt::Display for EndpointReference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.address)?;
        for (n, v) in &self.reference_properties {
            write!(f, "[{}={}]", wsrf_xml::QName::from_clark(n).local, v)?;
        }
        Ok(())
    }
}

/// The WS-Addressing message-information headers attached to each SOAP
/// message: destination EPR, action URI, message id and optional
/// reply-to / relates-to.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MessageInfo {
    /// Destination. Its reference properties ride along as separate
    /// headers (per WS-Addressing binding rules) so the receiving
    /// container can resolve the WS-Resource.
    pub to: EndpointReference,
    /// The operation URI, e.g. `uvacg/ExecutionService/Run`.
    pub action: String,
    /// Unique message id.
    pub message_id: String,
    /// Where to send the (asynchronous) reply, if any.
    pub reply_to: Option<EndpointReference>,
    /// Message id this message responds to, if any.
    pub relates_to: Option<String>,
}

impl MessageInfo {
    /// Headers for a request to `to` invoking `action`.
    pub fn request(to: EndpointReference, action: impl Into<String>) -> Self {
        MessageInfo {
            to,
            action: action.into(),
            message_id: fresh_message_id(),
            reply_to: None,
            relates_to: None,
        }
    }

    /// Headers for the response to `req`, echoing its message id in
    /// `<RelatesTo>`.
    pub fn response_to(req: &MessageInfo, action_suffix: &str) -> Self {
        MessageInfo {
            to: req.reply_to.clone().unwrap_or_default(),
            action: format!("{}{}", req.action, action_suffix),
            message_id: fresh_message_id(),
            reply_to: None,
            relates_to: Some(req.message_id.clone()),
        }
    }

    /// Stamp these headers onto an envelope.
    pub fn apply(&self, env: &mut Envelope) {
        env.headers
            .push(Element::new(ns::WSA, "To").text(&self.to.address));
        // Reference properties of the target EPR are promoted to
        // first-class headers, exactly as WS-Addressing requires and as
        // WSRF.NET expects to find them.
        for (n, v) in &self.to.reference_properties {
            let name = wsrf_xml::QName::from_clark(n);
            env.headers.push(Element::with_name(name).text(v));
        }
        env.headers
            .push(Element::new(ns::WSA, "Action").text(&self.action));
        env.headers
            .push(Element::new(ns::WSA, "MessageID").text(&self.message_id));
        if let Some(rt) = &self.reply_to {
            env.headers.push(rt.to_element_named(ns::WSA, "ReplyTo"));
        }
        if let Some(rel) = &self.relates_to {
            env.headers
                .push(Element::new(ns::WSA, "RelatesTo").text(rel));
        }
    }

    /// Recover addressing headers from a received envelope. Header
    /// blocks that are not WS-Addressing (or WS-Security) are treated
    /// as promoted reference properties, mirroring `apply`.
    pub fn extract(env: &Envelope) -> Result<Self, XmlError> {
        let mut info = MessageInfo::default();
        for h in &env.headers {
            if h.name.is(ns::WSA, "To") {
                info.to.address = h.text_content();
            } else if h.name.is(ns::WSA, "Action") {
                info.action = h.text_content();
            } else if h.name.is(ns::WSA, "MessageID") {
                info.message_id = h.text_content();
            } else if h.name.is(ns::WSA, "RelatesTo") {
                info.relates_to = Some(h.text_content());
            } else if h.name.is(ns::WSA, "ReplyTo") {
                info.reply_to = Some(EndpointReference::from_element(h)?);
            } else if h.name.ns_str() == Some(ns::WSSE) || h.name.ns_str() == Some(ns::WSA) {
                // Security headers are handled by the security layer;
                // unknown wsa headers are ignored.
            } else if h.name.is(ns::UVACG, TraceContext::HEADER_LOCAL) {
                // The trace context identifies the *request*, not the
                // resource — it must never become a reference property.
            } else {
                info.to
                    .reference_properties
                    .push((h.name.to_string(), h.text_content()));
            }
        }
        if info.action.is_empty() {
            return Err(XmlError::new("message has no wsa:Action header"));
        }
        Ok(info)
    }
}

/// Generate a unique message id (unique within this process; the
/// format mimics WS-Addressing's `uuid:` convention).
pub fn fresh_message_id() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    // Mix in the process start for cross-process uniqueness in the
    // multi-process transport tests.
    let pid = std::process::id();
    format!("uuid:{:08x}-{:016x}", pid, n)
}

/// The distributed-tracing context carried as a first-class SOAP
/// header next to the WS-Addressing message-information headers.
///
/// Wire form follows the W3C Trace Context `traceparent` field,
/// carried in a `{uvacg}TraceContext` header element:
///
/// ```text
/// <u:TraceContext xmlns:u="http://grid.cs.virginia.edu/uvacg">
///   00-0000000000000000000000000000002a-0000000000000007-01
/// </u:TraceContext>
/// ```
///
/// `version(00) - trace-id(32 hex) - parent-span-id(16 hex) -
/// flags(01 = sampled)`. Trace ids are 64-bit in this testbed, so the
/// upper half of the 128-bit field is always zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    /// The sender's span: the receiver parents its own span to this.
    pub span_id: u64,
    /// Whether the root sampled this trace (unsampled contexts
    /// propagate but record nothing).
    pub sampled: bool,
}

impl TraceContext {
    /// Local name of the header element (namespace [`ns::UVACG`]).
    pub const HEADER_LOCAL: &'static str = "TraceContext";

    pub fn new(trace_id: u64, span_id: u64, sampled: bool) -> Self {
        TraceContext {
            trace_id,
            span_id,
            sampled,
        }
    }

    /// The W3C-style `traceparent` value.
    pub fn to_traceparent(&self) -> String {
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }

    /// Parse a `traceparent` value; `None` on malformed input or the
    /// all-zero (invalid) trace id.
    pub fn parse(s: &str) -> Option<TraceContext> {
        let mut parts = s.trim().split('-');
        let (version, trace, span, flags) =
            (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() || version != "00" {
            return None;
        }
        if trace.len() != 32 || span.len() != 16 || flags.len() != 2 {
            return None;
        }
        let trace_id = u128::from_str_radix(trace, 16).ok()? as u64;
        let span_id = u64::from_str_radix(span, 16).ok()?;
        let flags = u8::from_str_radix(flags, 16).ok()?;
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            sampled: flags & 0x01 != 0,
        })
    }

    /// The header element.
    pub fn to_header(&self) -> Element {
        Element::new(ns::UVACG, Self::HEADER_LOCAL).text(self.to_traceparent())
    }

    /// Stamp onto an envelope, replacing any context already there
    /// (each hop re-stamps with its own span id).
    pub fn stamp(&self, env: &mut Envelope) {
        env.take_header(ns::UVACG, Self::HEADER_LOCAL);
        env.headers.push(self.to_header());
    }

    /// Recover the context from a received envelope, if present and
    /// well-formed.
    pub fn from_envelope(env: &Envelope) -> Option<TraceContext> {
        TraceContext::parse(&env.header(ns::UVACG, Self::HEADER_LOCAL)?.text_content())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epr_roundtrips_through_xml() {
        let epr = EndpointReference::resource("inproc://m1/Exec", "JobKey", "job-42")
            .with_property("{urn:x}Extra", "v");
        let back = EndpointReference::from_element(&epr.to_element()).unwrap();
        assert_eq!(back.address, epr.address);
        assert_eq!(back.resource_key(), Some("job-42"));
        assert_eq!(back.property("Extra"), Some("v"));
        // Clark-form names survive.
        assert_eq!(back.reference_properties[1].0, "{urn:x}Extra");
    }

    #[test]
    fn service_epr_has_no_key() {
        let epr = EndpointReference::service("http://h/svc");
        assert_eq!(epr.resource_key(), None);
        let el = epr.to_element();
        assert!(el.find(ns::WSA, "ReferenceProperties").is_none());
    }

    #[test]
    fn message_info_applies_and_extracts() {
        let to = EndpointReference::resource("inproc://m1/Exec", "JobKey", "7");
        let mut info = MessageInfo::request(to.clone(), "urn:Run");
        info.reply_to = Some(EndpointReference::service("inproc://client/listener"));
        let mut env = Envelope::new(Element::local("Run"));
        info.apply(&mut env);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        let back = MessageInfo::extract(&parsed).unwrap();
        assert_eq!(back.action, "urn:Run");
        assert_eq!(back.to.address, "inproc://m1/Exec");
        assert_eq!(back.to.resource_key(), Some("7"));
        assert_eq!(back.reply_to.unwrap().address, "inproc://client/listener");
        assert_eq!(back.message_id, info.message_id);
    }

    #[test]
    fn response_echoes_message_id() {
        let req = MessageInfo::request(EndpointReference::service("a"), "urn:Op");
        let resp = MessageInfo::response_to(&req, "Response");
        assert_eq!(resp.relates_to.as_deref(), Some(req.message_id.as_str()));
        assert_eq!(resp.action, "urn:OpResponse");
        assert_ne!(resp.message_id, req.message_id);
    }

    #[test]
    fn extract_requires_action() {
        let env = Envelope::new(Element::local("X"));
        assert!(MessageInfo::extract(&env).is_err());
    }

    #[test]
    fn message_ids_are_unique() {
        let a = fresh_message_id();
        let b = fresh_message_id();
        assert_ne!(a, b);
        assert!(a.starts_with("uuid:"));
    }

    #[test]
    fn display_shows_key() {
        let epr = EndpointReference::resource("inproc://m1/Fs", "DirKey", "d9");
        assert_eq!(epr.to_string(), "inproc://m1/Fs[DirKey=d9]");
    }

    #[test]
    fn trace_context_wire_roundtrip() {
        let tc = TraceContext::new(0xdead_beef_0042, 0x7, true);
        let tp = tc.to_traceparent();
        assert_eq!(
            tp,
            "00-00000000000000000000deadbeef0042-0000000000000007-01"
        );
        assert_eq!(TraceContext::parse(&tp), Some(tc));

        let mut env = Envelope::new(Element::local("Run"));
        tc.stamp(&mut env);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(TraceContext::from_envelope(&parsed), Some(tc));

        // Re-stamping replaces rather than accumulates.
        let mut env2 = parsed;
        let tc2 = TraceContext::new(tc.trace_id, 0x9, true);
        tc2.stamp(&mut env2);
        let headers: Vec<_> = env2
            .headers
            .iter()
            .filter(|h| h.name.is(ns::UVACG, TraceContext::HEADER_LOCAL))
            .collect();
        assert_eq!(headers.len(), 1);
        assert_eq!(TraceContext::from_envelope(&env2), Some(tc2));
    }

    #[test]
    fn trace_context_rejects_malformed() {
        for bad in [
            "",
            "00-xyz-0000000000000007-01",
            "01-00000000000000000000000000000001-0000000000000001-01", // wrong version
            "00-00000000000000000000000000000000-0000000000000001-01", // zero trace id
            "00-0001-0000000000000001-01",                             // short trace id
            "00-00000000000000000000000000000001-0001-01",             // short span id
            "00-00000000000000000000000000000001-0000000000000001-01-extra",
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
        let tc =
            TraceContext::parse("00-00000000000000000000000000000001-0000000000000002-00").unwrap();
        assert!(!tc.sampled);
    }

    #[test]
    fn trace_header_is_not_a_reference_property() {
        let to = EndpointReference::resource(
            "inproc://m1/Exec",
            "{http://grid.cs.virginia.edu/uvacg}JobKey",
            "7",
        );
        let mut env = Envelope::new(Element::local("Run"));
        MessageInfo::request(to, "urn:Run").apply(&mut env);
        TraceContext::new(1, 2, true).stamp(&mut env);
        let back = MessageInfo::extract(&Envelope::parse(&env.to_xml()).unwrap()).unwrap();
        // The real reference property survives; the trace header does
        // not leak into the key set.
        assert_eq!(back.to.resource_key(), Some("7"));
        assert_eq!(back.to.reference_properties.len(), 1);
    }
}
