//! Lazy inbound envelopes: header routing from the pull stream.
//!
//! [`LazyEnvelope::scan`] makes one forward pass over a received wire
//! document with [`wsrf_xml::PullParser`]. Along the way it
//!
//! * reconstructs the full [`MessageInfo`] (To / Action / MessageID /
//!   RelatesTo / ReplyTo plus promoted reference-property headers)
//!   from text captured straight off the event stream,
//! * decodes the `{uvacg}TraceContext` header,
//! * materializes only the headers that later stages need as trees —
//!   `<ReplyTo>` (an embedded EPR) and WS-Security blocks — via the
//!   parser's `build_element` escape hatch,
//! * records the raw byte span and namespace scope of the body's
//!   operation element, deferring its DOM.
//!
//! The scan tokenizes the whole document (so malformed or truncated
//! input fails here, before any routing decision is acted on), but
//! builds no body DOM. Read-only operations that need at most the
//! body's name and text content answer without ever materializing it;
//! write operations call [`LazyEnvelope::materialize_body`] on demand.
//!
//! Semantics match the DOM path (`Envelope::parse` +
//! `MessageInfo::extract`) exactly: only the first `<soap:Header>` and
//! first `<soap:Body>` count, header order is irrelevant, duplicate
//! text headers resolve last-wins, unknown non-WSA/WSSE headers are
//! promoted to reference properties, and the trace-context header
//! never becomes one.

use std::sync::Arc;

use wsrf_xml::{Element, Event, PullParser, QName, XmlError};

use crate::addressing::{EndpointReference, MessageInfo, TraceContext};
use crate::ns;

/// A header-routed view of a received envelope whose body DOM has not
/// been built.
#[derive(Debug)]
pub struct LazyEnvelope<'a> {
    /// Fully reconstructed addressing headers.
    pub info: MessageInfo,
    /// Decoded trace-context header, if present and well-formed.
    pub trace: Option<TraceContext>,
    /// Headers materialized during the scan because a later stage
    /// needs them as trees: `<ReplyTo>` and WS-Security blocks.
    pub headers: Vec<Element>,
    /// Resolved name of the body's operation element.
    body_name: QName,
    /// Raw wire span of the operation element.
    body_span: &'a str,
    /// Namespace bindings in scope where the span starts.
    body_scope: Vec<(String, Option<Arc<str>>)>,
}

impl<'a> LazyEnvelope<'a> {
    /// Scan a wire document, routing on headers and deferring the
    /// body. Errors mirror [`crate::Envelope::parse`] +
    /// [`MessageInfo::extract`] on the same inputs.
    pub fn scan(wire: &'a str) -> Result<LazyEnvelope<'a>, XmlError> {
        let mut p = PullParser::new(wire);
        match p.next_event()? {
            Some(Event::Start { ns, local }) if is(&ns, local, ns::SOAP_ENV, "Envelope") => {}
            Some(Event::Start { ns, local }) => {
                return Err(XmlError::new(format!(
                    "expected soap:Envelope, found {}",
                    clark(&ns, local)
                )));
            }
            // The tokenizer errors before yielding anything else first.
            _ => return Err(XmlError::new("expected soap:Envelope")),
        }

        let mut info = MessageInfo::default();
        let mut trace = None;
        let mut headers = Vec::new();
        let mut body: Option<(QName, &'a str, Vec<(String, Option<Arc<str>>)>)> = None;
        let mut seen_header = false;
        let mut seen_body = false;

        // Children of <Envelope>.
        loop {
            match p.next_event()? {
                Some(Event::Start { ns, local }) => {
                    if is(&ns, local, ns::SOAP_ENV, "Header") && !seen_header {
                        seen_header = true;
                        scan_headers(&mut p, &mut info, &mut trace, &mut headers)?;
                    } else if is(&ns, local, ns::SOAP_ENV, "Body") && !seen_body {
                        seen_body = true;
                        body = scan_body(&mut p, wire)?;
                    } else {
                        p.skip_element()?;
                    }
                }
                Some(Event::Text(_)) => {}
                Some(Event::End) => break,
                None => unreachable!("tokenizer reports eof-in-content as an error"),
            }
        }
        // Drive the trailing-content check, as Envelope::parse does.
        p.next_event()?;

        if !seen_body {
            return Err(XmlError::new(format!(
                "element <{{{}}}Envelope> is missing required child {{{}}}Body",
                ns::SOAP_ENV,
                ns::SOAP_ENV
            )));
        }
        let (body_name, body_span, body_scope) =
            body.ok_or_else(|| XmlError::new("soap:Body must contain one element"))?;
        if info.action.is_empty() {
            return Err(XmlError::new("message has no wsa:Action header"));
        }
        Ok(LazyEnvelope {
            info,
            trace,
            headers,
            body_name,
            body_span,
            body_scope,
        })
    }

    /// Resolved name of the body's operation element (no DOM needed).
    pub fn body_name(&self) -> &QName {
        &self.body_name
    }

    /// Text content of the body element — concatenated character data
    /// of it and its descendants, like [`Element::text_content`] —
    /// collected from a re-tokenization of the deferred span without
    /// building a DOM.
    pub fn body_text(&self) -> String {
        let mut p = PullParser::with_scope(self.body_span, &self.body_scope);
        // The span already tokenized cleanly during the scan.
        match p.next_event() {
            Ok(Some(Event::Start { .. })) => p.collect_text().unwrap_or_default(),
            _ => String::new(),
        }
    }

    /// Materialize the deferred body element on demand (one DOM build,
    /// counted by [`wsrf_xml::dom_build_count`]).
    pub fn materialize_body(&self) -> Result<Element, XmlError> {
        let mut p = PullParser::with_scope(self.body_span, &self.body_scope);
        match p.next_event()? {
            Some(Event::Start { .. }) => p.build_element(),
            _ => Err(XmlError::new("deferred body span is not an element")),
        }
    }
}

fn is(ns: &Option<Arc<str>>, local: &str, want_ns: &str, want_local: &str) -> bool {
    local == want_local && ns.as_deref() == Some(want_ns)
}

fn clark(ns: &Option<Arc<str>>, local: &str) -> String {
    match ns {
        Some(uri) => format!("{{{}}}{}", uri, local),
        None => local.to_string(),
    }
}

/// Walk the children of the first `<soap:Header>`, mirroring the
/// classification chain of [`MessageInfo::extract`].
fn scan_headers(
    p: &mut PullParser<'_>,
    info: &mut MessageInfo,
    trace: &mut Option<TraceContext>,
    headers: &mut Vec<Element>,
) -> Result<(), XmlError> {
    loop {
        match p.next_event()? {
            Some(Event::Start { ns, local }) => {
                let nss = ns.as_deref();
                if nss == Some(ns::WSA) {
                    match local {
                        "To" => info.to.address = p.collect_text()?,
                        "Action" => info.action = p.collect_text()?,
                        "MessageID" => info.message_id = p.collect_text()?,
                        "RelatesTo" => info.relates_to = Some(p.collect_text()?),
                        "ReplyTo" => {
                            let el = p.build_element()?;
                            info.reply_to = Some(EndpointReference::from_element(&el)?);
                            headers.push(el);
                        }
                        // Unknown wsa headers are ignored.
                        _ => p.skip_element()?,
                    }
                } else if nss == Some(ns::WSSE) {
                    // Security blocks are consumed as trees by the
                    // security layer; keep them.
                    headers.push(p.build_element()?);
                } else if nss == Some(ns::UVACG) && local == TraceContext::HEADER_LOCAL {
                    // The trace context identifies the *request*, not
                    // the resource — never a reference property.
                    *trace = TraceContext::parse(&p.collect_text()?);
                } else {
                    // Promoted reference property.
                    let name = clark(&ns, local);
                    let text = p.collect_text()?;
                    info.to.reference_properties.push((name, text));
                }
            }
            Some(Event::Text(_)) => {}
            Some(Event::End) => return Ok(()),
            None => unreachable!("tokenizer reports eof-in-content as an error"),
        }
    }
}

/// Walk the children of the first `<soap:Body>`: capture the first
/// element's name, span and namespace scope, skip the rest.
#[allow(clippy::type_complexity)]
fn scan_body<'a>(
    p: &mut PullParser<'a>,
    wire: &'a str,
) -> Result<Option<(QName, &'a str, Vec<(String, Option<Arc<str>>)>)>, XmlError> {
    // Scope at <Body> includes every binding visible to its children
    // that the deferred span itself does not re-declare.
    let scope = p.scope();
    let mut first = None;
    loop {
        match p.next_event()? {
            Some(Event::Start { ns, local }) => {
                if first.is_none() {
                    let name = match ns {
                        Some(uri) => QName {
                            ns: Some(uri),
                            local: local.to_string(),
                        },
                        None => QName::local(local),
                    };
                    let start = p.last_start_pos();
                    p.skip_element()?;
                    first = Some((name, &wire[start..p.pos()], scope.clone()));
                } else {
                    // Extra body children are ignored, as in
                    // Envelope::from_element.
                    p.skip_element()?;
                }
            }
            Some(Event::Text(_)) => {}
            Some(Event::End) => return Ok(first),
            None => unreachable!("tokenizer reports eof-in-content as an error"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;
    use wsrf_xml::{dom_build_count, Element};

    fn request_wire() -> String {
        let to = EndpointReference::resource("inproc://m1/Exec", "{urn:k}JobKey", "j-7");
        let mut info = MessageInfo::request(to, "urn:svc/Run");
        info.reply_to = Some(EndpointReference::service("inproc://client/cb"));
        let mut env = Envelope::new(
            Element::new("urn:svc", "Run")
                .attr("mode", "fast")
                .child(Element::new("urn:svc", "Arg").text("a&b")),
        );
        info.apply(&mut env);
        TraceContext::new(0x42, 0x7, true).stamp(&mut env);
        env.to_xml()
    }

    #[test]
    fn scan_matches_dom_extraction() {
        let wire = request_wire();
        let dom = Envelope::parse(&wire).unwrap();
        let want = MessageInfo::extract(&dom).unwrap();
        let lazy = LazyEnvelope::scan(&wire).unwrap();
        assert_eq!(lazy.info, want);
        assert_eq!(lazy.trace, TraceContext::from_envelope(&dom));
        assert_eq!(lazy.body_name(), &dom.body.name);
        assert_eq!(lazy.body_text(), dom.body.text_content());
    }

    #[test]
    fn scan_builds_no_body_dom_until_asked() {
        let wire = request_wire();
        let before = dom_build_count();
        let lazy = LazyEnvelope::scan(&wire).unwrap();
        let _ = lazy.body_text();
        // ReplyTo is the only tree built by the scan; the body span
        // stays raw even through body_text().
        assert_eq!(dom_build_count() - before, 1);
        let body = lazy.materialize_body().unwrap();
        assert_eq!(dom_build_count() - before, 2);
        assert_eq!(body, Envelope::parse(&wire).unwrap().body);
    }

    #[test]
    fn deferred_body_keeps_inherited_namespaces() {
        let wire = format!(
            "<e:Envelope xmlns:e=\"{soap}\" xmlns:p=\"urn:inherit\">\
             <e:Header><a:Action xmlns:a=\"{wsa}\">urn:op</a:Action></e:Header>\
             <e:Body><p:Op><p:Kid/></p:Op></e:Body></e:Envelope>",
            soap = ns::SOAP_ENV,
            wsa = ns::WSA,
        );
        let lazy = LazyEnvelope::scan(&wire).unwrap();
        assert!(lazy.body_name().is("urn:inherit", "Op"));
        let body = lazy.materialize_body().unwrap();
        assert_eq!(body, Envelope::parse(&wire).unwrap().body);
    }

    #[test]
    fn body_before_header_routes_identically() {
        let wire = format!(
            "<e:Envelope xmlns:e=\"{soap}\">\
             <e:Body><Op>x</Op></e:Body>\
             <e:Header><a:Action xmlns:a=\"{wsa}\">urn:op</a:Action>\
             <a:To xmlns:a=\"{wsa}\">dest</a:To></e:Header>\
             </e:Envelope>",
            soap = ns::SOAP_ENV,
            wsa = ns::WSA,
        );
        let lazy = LazyEnvelope::scan(&wire).unwrap();
        let want = MessageInfo::extract(&Envelope::parse(&wire).unwrap()).unwrap();
        assert_eq!(lazy.info, want);
        assert_eq!(lazy.info.to.address, "dest");
        assert_eq!(lazy.body_text(), "x");
    }

    #[test]
    fn duplicate_to_headers_resolve_last_wins() {
        let wire = format!(
            "<e:Envelope xmlns:e=\"{soap}\" xmlns:a=\"{wsa}\">\
             <e:Header><a:To>first</a:To><a:Action>urn:op</a:Action>\
             <a:To>second</a:To></e:Header>\
             <e:Body><Op/></e:Body></e:Envelope>",
            soap = ns::SOAP_ENV,
            wsa = ns::WSA,
        );
        let lazy = LazyEnvelope::scan(&wire).unwrap();
        let want = MessageInfo::extract(&Envelope::parse(&wire).unwrap()).unwrap();
        assert_eq!(lazy.info.to.address, "second");
        assert_eq!(lazy.info, want);
    }

    #[test]
    fn missing_action_fails_like_extract() {
        let wire = format!(
            "<e:Envelope xmlns:e=\"{soap}\"><e:Body><Op/></e:Body></e:Envelope>",
            soap = ns::SOAP_ENV,
        );
        let lazy_err = LazyEnvelope::scan(&wire).unwrap_err();
        let dom_err = MessageInfo::extract(&Envelope::parse(&wire).unwrap()).unwrap_err();
        assert_eq!(lazy_err.message, dom_err.message);
    }

    #[test]
    fn malformed_wire_fails_like_dom_parse() {
        for wire in [
            "<a/>",                       // not an envelope
            "not xml at all",             // junk
            "<e:Envelope xmlns:e=\"x\">", // truncated
        ] {
            let lazy = LazyEnvelope::scan(wire);
            let dom = Envelope::parse(wire);
            assert!(lazy.is_err(), "{wire:?}");
            assert!(dom.is_err(), "{wire:?}");
        }
        // Truncated *body* after well-formed headers still fails the
        // scan (the single pass tokenizes everything).
        let truncated = format!(
            "<e:Envelope xmlns:e=\"{soap}\" xmlns:a=\"{wsa}\">\
             <e:Header><a:Action>urn:op</a:Action></e:Header>\
             <e:Body><Op><Unclosed>",
            soap = ns::SOAP_ENV,
            wsa = ns::WSA,
        );
        assert!(LazyEnvelope::scan(&truncated).is_err());
    }

    #[test]
    fn empty_body_fails_like_from_element() {
        let wire = format!(
            "<e:Envelope xmlns:e=\"{soap}\" xmlns:a=\"{wsa}\">\
             <e:Header><a:Action>urn:op</a:Action></e:Header>\
             <e:Body/></e:Envelope>",
            soap = ns::SOAP_ENV,
            wsa = ns::WSA,
        );
        let lazy_err = LazyEnvelope::scan(&wire).unwrap_err();
        let dom_err = Envelope::parse(&wire).unwrap_err();
        assert_eq!(lazy_err.message, dom_err.message);
    }

    #[test]
    fn security_headers_are_retained_as_trees() {
        let wire = format!(
            "<e:Envelope xmlns:e=\"{soap}\" xmlns:a=\"{wsa}\" xmlns:s=\"{wsse}\">\
             <e:Header><a:Action>urn:op</a:Action>\
             <s:Security><s:UsernameToken><s:Username>u</s:Username>\
             </s:UsernameToken></s:Security></e:Header>\
             <e:Body><Op/></e:Body></e:Envelope>",
            soap = ns::SOAP_ENV,
            wsa = ns::WSA,
            wsse = ns::WSSE,
        );
        let lazy = LazyEnvelope::scan(&wire).unwrap();
        let sec = lazy
            .headers
            .iter()
            .find(|h| h.name.is(ns::WSSE, "Security"))
            .expect("security header retained");
        let dom = Envelope::parse(&wire).unwrap();
        assert_eq!(sec, dom.header(ns::WSSE, "Security").unwrap());
    }
}
