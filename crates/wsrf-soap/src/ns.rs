//! Namespace URIs for the specifications implemented in this
//! workspace. The URIs match the 2004-era draft specifications cited by
//! the paper.

/// SOAP 1.1 envelope namespace.
pub const SOAP_ENV: &str = "http://schemas.xmlsoap.org/soap/envelope/";

/// WS-Addressing (the 2004/08 member submission the paper used).
pub const WSA: &str = "http://schemas.xmlsoap.org/ws/2004/08/addressing";

/// WS-ResourceProperties.
pub const WSRP: &str =
    "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties-1.2-draft-01.xsd";

/// WS-ResourceLifetime.
pub const WSRL: &str =
    "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceLifetime-1.2-draft-01.xsd";

/// WS-BaseFaults.
pub const WSBF: &str =
    "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-BaseFaults-1.2-draft-01.xsd";

/// WS-ServiceGroup.
pub const WSSG: &str =
    "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ServiceGroup-1.2-draft-01.xsd";

/// WS-BaseNotification.
pub const WSNT: &str =
    "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-BaseNotification-1.2-draft-01.xsd";

/// WS-Topics.
pub const WSTOP: &str = "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-Topics-1.2-draft-01.xsd";

/// WS-BrokeredNotification.
pub const WSBN: &str =
    "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-BrokeredNotification-1.2-draft-01.xsd";

/// WS-Security (UsernameToken profile).
pub const WSSE: &str =
    "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd";

/// Namespace for this testbed's own service vocabularies (the UVaCG
/// services define their messages here, mirroring the paper's campus
/// grid namespace).
pub const UVACG: &str = "http://grid.cs.virginia.edu/uvacg";
