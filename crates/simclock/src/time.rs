//! Virtual time points.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, measured in nanoseconds since the clock's
/// epoch (time zero, when the [`crate::Clock`] was created).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The epoch (virtual time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole virtual seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional virtual seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9) as u64)
    }

    /// Construct from virtual milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// This time as fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration since an earlier time (saturating).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(d.as_nanos() as u64))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2);
        assert_eq!(t + Duration::from_secs(3), SimTime::from_secs(5));
        assert_eq!(SimTime::from_secs(5) - t, Duration::from_secs(3));
        assert_eq!(t - SimTime::from_secs(5), Duration::ZERO, "saturates");
        assert_eq!(t.saturating_sub(Duration::from_secs(10)), SimTime::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_millis(250).as_secs_f64(), 0.25);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t+1.500000s");
    }
}
