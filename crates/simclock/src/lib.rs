//! # simclock
//!
//! A virtual clock plus deadline scheduler used by every simulated
//! substrate in the workspace (the machine simulator in `grid-node`,
//! the network cost model in `wsrf-transport`, scheduled resource
//! destruction in `wsrf-core`, subscription termination in
//! `ws-notification`).
//!
//! The paper's testbed ran on wall-clock time across a campus; our
//! reproduction compresses "minutes of grid activity" into
//! milliseconds by running all *simulated* costs (CPU seconds, network
//! transfer times, lease durations) against a [`Clock`] that either
//!
//! * advances only when told to ([`Clock::manual`]) — used by unit and
//!   integration tests for full determinism, or
//! * advances in scaled real time ([`Clock::scaled`]) — e.g. at
//!   speedup 1000, one virtual second elapses every real millisecond —
//!   used by the examples and benches, where many threads genuinely
//!   block and wake concurrently.
//!
//! Timers registered with [`Clock::schedule`] fire in deadline order.
//! In manual mode they run inline on the thread calling
//! [`Clock::advance`]; in scaled mode a dedicated worker thread runs
//! them.

pub mod clock;
pub mod time;

pub use clock::{Clock, TimerId};
pub use time::SimTime;

pub use std::time::Duration;
