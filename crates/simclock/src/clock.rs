//! The virtual clock and its deadline scheduler.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::time::SimTime;

/// Identifier of a scheduled timer, usable with [`Clock::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

type Callback = Box<dyn FnOnce(SimTime) + Send>;

#[derive(Clone, Copy)]
enum Mode {
    /// Time moves only via [`Clock::advance`].
    Manual,
    /// Time moves continuously: `virtual = base + real_elapsed * speedup`.
    Scaled { speedup: f64 },
}

#[derive(PartialEq, Eq)]
struct Entry {
    deadline: SimTime,
    seq: u64,
    id: TimerId,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct State {
    /// Pending timers, earliest first.
    heap: BinaryHeap<Reverse<Entry>>,
    /// Callback bodies; a missing entry means the timer was cancelled.
    callbacks: HashMap<u64, Callback>,
    /// Current virtual time (manual mode) / base time (scaled mode).
    now: SimTime,
    next_seq: u64,
}

struct Inner {
    mode: Mode,
    state: Mutex<State>,
    cv: Condvar,
    /// Real-time anchor for scaled mode.
    base_real: Instant,
    shutdown: AtomicBool,
}

/// A shareable virtual clock. Cloning is cheap (it is an `Arc`).
///
/// See the crate docs for the two operating modes. All simulated
/// subsystems take a `Clock` at construction so a whole grid shares a
/// single timeline.
#[derive(Clone)]
pub struct Clock {
    inner: Arc<Inner>,
}

impl Clock {
    /// A clock that only moves when [`advance`](Self::advance) is
    /// called. Timer callbacks run inline on the advancing thread, in
    /// deadline order — fully deterministic.
    pub fn manual() -> Self {
        Clock::new(Mode::Manual)
    }

    /// A clock in which one real second equals `speedup` virtual
    /// seconds. A background worker thread fires due timers.
    ///
    /// # Panics
    /// Panics if `speedup` is not finite and positive.
    pub fn scaled(speedup: f64) -> Self {
        assert!(
            speedup.is_finite() && speedup > 0.0,
            "speedup must be positive"
        );
        let clock = Clock::new(Mode::Scaled { speedup });
        let weak = Arc::downgrade(&clock.inner);
        std::thread::Builder::new()
            .name("simclock-worker".into())
            .spawn(move || run_worker(weak))
            .expect("spawn simclock worker");
        clock
    }

    /// A real-time clock (speedup 1). Rarely wanted outside demos.
    pub fn realtime() -> Self {
        Clock::scaled(1.0)
    }

    fn new(mode: Mode) -> Self {
        Clock {
            inner: Arc::new(Inner {
                mode,
                state: Mutex::new(State {
                    heap: BinaryHeap::new(),
                    callbacks: HashMap::new(),
                    now: SimTime::ZERO,
                    next_seq: 0,
                }),
                cv: Condvar::new(),
                base_real: Instant::now(),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        match self.inner.mode {
            Mode::Manual => self.inner.state.lock().now,
            Mode::Scaled { speedup } => {
                let real = self.inner.base_real.elapsed().as_secs_f64();
                SimTime::from_secs_f64(real * speedup)
            }
        }
    }

    /// True if this clock is in manual mode.
    pub fn is_manual(&self) -> bool {
        matches!(self.inner.mode, Mode::Manual)
    }

    /// Schedule `cb` to run `delay` of virtual time from now. The
    /// callback receives the virtual time at which it fires.
    pub fn schedule(&self, delay: Duration, cb: impl FnOnce(SimTime) + Send + 'static) -> TimerId {
        self.schedule_at(self.now() + delay, cb)
    }

    /// Schedule `cb` at an absolute virtual time. Deadlines in the past
    /// fire at the next opportunity.
    pub fn schedule_at(
        &self,
        deadline: SimTime,
        cb: impl FnOnce(SimTime) + Send + 'static,
    ) -> TimerId {
        let mut st = self.inner.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        let id = TimerId(seq);
        st.heap.push(Reverse(Entry { deadline, seq, id }));
        st.callbacks.insert(seq, Box::new(cb));
        drop(st);
        self.inner.cv.notify_all();
        id
    }

    /// Cancel a pending timer. Returns true if the timer had not yet
    /// fired (or been cancelled).
    pub fn cancel(&self, id: TimerId) -> bool {
        self.inner.state.lock().callbacks.remove(&id.0).is_some()
    }

    /// Number of timers that have been scheduled but not fired or
    /// cancelled.
    pub fn pending_timers(&self) -> usize {
        self.inner.state.lock().callbacks.len()
    }

    /// Manual mode only: move time forward by `d`, firing every timer
    /// whose deadline falls in the window, in deadline order, inline on
    /// this thread. Timers scheduled *by* fired callbacks also fire if
    /// they land inside the window.
    ///
    /// # Panics
    /// Panics when called on a scaled clock.
    pub fn advance(&self, d: Duration) {
        assert!(self.is_manual(), "advance() requires a manual clock");
        let target = {
            let st = self.inner.state.lock();
            st.now + d
        };
        self.advance_to(target);
    }

    /// Manual mode only: advance to an absolute virtual time.
    pub fn advance_to(&self, target: SimTime) {
        assert!(self.is_manual(), "advance_to() requires a manual clock");
        enum Step {
            Fire(Callback, SimTime),
            /// A cancelled timer was discarded; keep scanning.
            Skip,
            /// No timer left inside the window.
            Done,
        }
        loop {
            let step = {
                let mut st = self.inner.state.lock();
                match st.heap.peek() {
                    Some(Reverse(e)) if e.deadline <= target => {
                        let Reverse(e) = st.heap.pop().unwrap();
                        if e.deadline > st.now {
                            st.now = e.deadline;
                        }
                        let at = st.now;
                        match st.callbacks.remove(&e.seq) {
                            Some(cb) => Step::Fire(cb, at),
                            None => Step::Skip,
                        }
                    }
                    _ => {
                        if target > st.now {
                            st.now = target;
                        }
                        Step::Done
                    }
                }
            };
            match step {
                Step::Fire(cb, at) => {
                    self.inner.cv.notify_all();
                    // The callback may schedule further timers inside
                    // the window; the loop re-peeks and fires them too.
                    cb(at);
                }
                Step::Skip => {}
                Step::Done => {
                    self.inner.cv.notify_all();
                    return;
                }
            }
        }
    }

    /// Drain every pending timer regardless of deadline (manual mode).
    /// Useful at test teardown.
    pub fn drain(&self) {
        assert!(self.is_manual(), "drain() requires a manual clock");
        loop {
            let last = {
                self.inner
                    .state
                    .lock()
                    .heap
                    .iter()
                    .map(|Reverse(e)| e.deadline)
                    .max()
            };
            match last {
                Some(t) => self.advance_to(t),
                None => return,
            }
            if self.inner.state.lock().callbacks.is_empty() {
                return;
            }
        }
    }

    /// Block the calling thread for `d` of virtual time.
    ///
    /// In scaled mode this is a real sleep of `d / speedup`. In manual
    /// mode the thread waits until some other thread advances the clock
    /// past the target — do not call it from the advancing thread.
    pub fn sleep(&self, d: Duration) {
        match self.inner.mode {
            Mode::Scaled { speedup } => {
                std::thread::sleep(d.div_f64(speedup));
            }
            Mode::Manual => {
                let target = self.now() + d;
                let mut st = self.inner.state.lock();
                while st.now < target {
                    self.inner.cv.wait(&mut st);
                }
            }
        }
    }

    /// Block until all currently pending timers have fired (scaled
    /// mode); polls because timers may cascade.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let start = Instant::now();
        while self.pending_timers() > 0 {
            if start.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }
}

/// Worker loop for scaled mode. Holds only a `Weak` so dropping the
/// last user-visible `Clock` shuts the thread down.
fn run_worker(weak: std::sync::Weak<Inner>) {
    loop {
        let inner = match weak.upgrade() {
            Some(i) => i,
            None => return,
        };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let speedup = match inner.mode {
            Mode::Scaled { speedup } => speedup,
            Mode::Manual => unreachable!("worker only runs for scaled clocks"),
        };
        let action = {
            let mut st = inner.state.lock();
            match st.heap.peek() {
                Some(Reverse(e)) => {
                    let now = {
                        let real = inner.base_real.elapsed().as_secs_f64();
                        SimTime::from_secs_f64(real * speedup)
                    };
                    if e.deadline <= now {
                        let Reverse(e) = st.heap.pop().unwrap();
                        st.callbacks.remove(&e.seq).map(|cb| (cb, e.deadline))
                    } else {
                        let wait_virtual = e.deadline - now;
                        let wait_real =
                            wait_virtual.div_f64(speedup).min(Duration::from_millis(50));
                        inner.cv.wait_for(&mut st, wait_real);
                        None
                    }
                }
                None => {
                    inner.cv.wait_for(&mut st, Duration::from_millis(50));
                    None
                }
            }
        };
        // Drop the strong reference before running the callback so a
        // long callback does not keep the clock alive unnecessarily.
        drop(inner);
        if let Some((cb, at)) = action {
            cb(at);
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Clock(now={}, pending={})",
            self.now(),
            self.pending_timers()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn manual_clock_starts_at_zero_and_advances() {
        let c = Clock::manual();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(Duration::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(5));
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let c = Clock::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (label, at) in [("c", 3u64), ("a", 1), ("b", 2)] {
            let log = log.clone();
            c.schedule(Duration::from_secs(at), move |t| {
                log.lock().push((label, t));
            });
        }
        c.advance(Duration::from_secs(10));
        let fired = log.lock().clone();
        assert_eq!(
            fired,
            vec![
                ("a", SimTime::from_secs(1)),
                ("b", SimTime::from_secs(2)),
                ("c", SimTime::from_secs(3)),
            ]
        );
    }

    #[test]
    fn equal_deadlines_fire_fifo() {
        let c = Clock::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        for label in ["first", "second", "third"] {
            let log = log.clone();
            c.schedule(Duration::from_secs(1), move |_| log.lock().push(label));
        }
        c.advance(Duration::from_secs(1));
        assert_eq!(*log.lock(), vec!["first", "second", "third"]);
    }

    #[test]
    fn advance_stops_at_target() {
        let c = Clock::manual();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        c.schedule(Duration::from_secs(10), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        c.advance(Duration::from_secs(9));
        assert_eq!(hit.load(Ordering::SeqCst), 0);
        assert_eq!(c.pending_timers(), 1);
        c.advance(Duration::from_secs(1));
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cascading_timers_fire_within_window() {
        let c = Clock::manual();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        let c2 = c.clone();
        c.schedule(Duration::from_secs(1), move |_| {
            let h = h.clone();
            c2.schedule(Duration::from_secs(1), move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        });
        c.advance(Duration::from_secs(3));
        assert_eq!(hit.load(Ordering::SeqCst), 1, "nested timer fired");
        assert_eq!(c.now(), SimTime::from_secs(3), "time reached the target");
    }

    #[test]
    fn cancel_prevents_firing() {
        let c = Clock::manual();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        let id = c.schedule(Duration::from_secs(1), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(c.cancel(id));
        assert!(!c.cancel(id), "second cancel is a no-op");
        c.advance(Duration::from_secs(2));
        assert_eq!(hit.load(Ordering::SeqCst), 0);
        assert_eq!(c.pending_timers(), 0);
    }

    #[test]
    fn callback_observes_its_deadline_not_the_target() {
        let c = Clock::manual();
        let seen = Arc::new(Mutex::new(None));
        let s = seen.clone();
        c.schedule(Duration::from_secs(2), move |t| {
            *s.lock() = Some(t);
        });
        c.advance(Duration::from_secs(100));
        assert_eq!(*seen.lock(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn cancelled_timer_does_not_stall_advance() {
        // Regression: a cancelled timer inside the window used to stop
        // advance_to() at the cancelled deadline, stranding later
        // timers (the CPU simulator cancels/reschedules constantly).
        let c = Clock::manual();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        let dead = c.schedule(Duration::from_secs(2), |_| panic!("cancelled timer fired"));
        c.schedule(Duration::from_secs(4), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        c.cancel(dead);
        c.advance(Duration::from_secs(3));
        assert_eq!(c.now(), SimTime::from_secs(3), "time reaches the target");
        c.advance(Duration::from_secs(2));
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drain_fires_everything() {
        let c = Clock::manual();
        let hit = Arc::new(AtomicUsize::new(0));
        for s in [5u64, 50, 500] {
            let h = hit.clone();
            c.schedule(Duration::from_secs(s), move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        c.drain();
        assert_eq!(hit.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn scaled_clock_fires_timers_in_real_time() {
        let c = Clock::scaled(1000.0); // 1 virtual second per real ms
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        c.schedule(Duration::from_secs(2), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(c.wait_idle(Duration::from_secs(5)), "timer should fire");
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert!(c.now() >= SimTime::from_secs(2));
    }

    #[test]
    fn scaled_sleep_scales() {
        let c = Clock::scaled(1000.0);
        let real = Instant::now();
        c.sleep(Duration::from_secs(1));
        let elapsed = real.elapsed();
        assert!(elapsed < Duration::from_millis(500), "slept {elapsed:?}");
    }

    #[test]
    fn manual_sleep_wakes_on_advance() {
        let c = Clock::manual();
        let c2 = c.clone();
        let t = std::thread::spawn(move || {
            c2.sleep(Duration::from_secs(3));
            c2.now()
        });
        // Give the sleeper time to block, then advance.
        std::thread::sleep(Duration::from_millis(50));
        c.advance(Duration::from_secs(5));
        assert_eq!(t.join().unwrap(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "manual clock")]
    fn advance_panics_on_scaled_clock() {
        Clock::scaled(10.0).advance(Duration::from_secs(1));
    }
}
