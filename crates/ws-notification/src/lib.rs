//! # ws-notification
//!
//! The WS-Notification family — WS-BaseNotification, WS-Topics and
//! WS-BrokeredNotification — implemented over the `wsrf-core`
//! container, mirroring WSRF.NET's support.
//!
//! The paper's testbed leans on notification everywhere: the
//! ProcSpawn service notifies the Execution Service when a job exits,
//! the File System Service notifies when uploads complete, the
//! Processor Utilization service notifies the Node Info Service on
//! utilization changes, and a central **Notification Broker**
//! multicasts job-set events to the Scheduler and the client ("it is
//! more convenient to use the Notification Broker service as a
//! multicast mechanism").
//!
//! * [`topics`] — topic paths and the three WS-Topics expression
//!   dialects (Simple / Concrete / Full with `*` and `//` wildcards),
//! * [`message`] — the `<wsnt:Notify>` wire format,
//! * [`producer`] — an embeddable subscription manager + direct
//!   notification producer ("custom mechanisms ... are permitted"),
//! * [`consumer`] — a lightweight notification listener, the analogue
//!   of "WSRF.NET's light-weight notification receivers" the client
//!   GUI starts,
//! * [`broker`] — the brokered path: a WSRF service whose resources
//!   are *subscriptions* (pausable, lease-limited, queryable through
//!   the standard port types).

// WS-BaseFaults carries timestamps, originator EPRs and cause chains
// by design, so fault values are large; handlers are not hot paths and
// faults are exceptional, so we keep them by value rather than boxing
// every error site.
#![allow(clippy::result_large_err)]

pub mod broker;
pub mod consumer;
pub mod message;
pub mod producer;
pub mod topics;

pub use broker::BrokerConfig;
pub use consumer::NotificationListener;
pub use message::NotificationMessage;
pub use producer::{NotificationProducer, SubscriptionManager};
pub use topics::{Dialect, TopicExpression, TopicPath};
