//! The `<wsnt:Notify>` wire format of WS-BaseNotification.

use wsrf_soap::{ns, EndpointReference, Envelope, MessageInfo};
use wsrf_xml::Element;

use crate::topics::{Dialect, TopicPath};

/// Action URI of the one-way `Notify` message.
pub fn notify_action() -> String {
    format!("{}/Notify", ns::WSNT)
}

/// One notification: a topic, the producer that emitted it, and an
/// arbitrary message payload.
#[derive(Debug, Clone, PartialEq)]
pub struct NotificationMessage {
    /// The concrete topic the notification was published on.
    pub topic: TopicPath,
    /// Who produced it (used by consumers to poll the resource the
    /// event concerns — e.g. the job EPR broadcast in step 9).
    pub producer: Option<EndpointReference>,
    /// The payload element.
    pub payload: Element,
}

impl NotificationMessage {
    /// Build a message.
    pub fn new(topic: impl Into<TopicPath>, payload: Element) -> Self {
        NotificationMessage {
            topic: topic.into(),
            producer: None,
            payload,
        }
    }

    /// Attach the producer reference.
    pub fn from_producer(mut self, epr: EndpointReference) -> Self {
        self.producer = Some(epr);
        self
    }

    /// Serialize as a `<wsnt:NotificationMessage>` element.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new(ns::WSNT, "NotificationMessage");
        e.push_child(
            Element::new(ns::WSNT, "Topic")
                .attr("Dialect", Dialect::Concrete.uri())
                .text(self.topic.to_string()),
        );
        if let Some(p) = &self.producer {
            e.push_child(p.to_element_named(ns::WSNT, "ProducerReference"));
        }
        e.push_child(Element::new(ns::WSNT, "Message").child(self.payload.clone()));
        e
    }

    /// Decode from a `<wsnt:NotificationMessage>` element.
    pub fn from_element(e: &Element) -> Option<NotificationMessage> {
        let topic = TopicPath::parse(&e.find(ns::WSNT, "Topic")?.text_content());
        let producer = e
            .find(ns::WSNT, "ProducerReference")
            .and_then(|p| EndpointReference::from_element(p).ok());
        let payload = e.find(ns::WSNT, "Message")?.elements().next()?.clone();
        Some(NotificationMessage {
            topic,
            producer,
            payload,
        })
    }

    /// Wrap one message in a complete one-way `Notify` envelope
    /// addressed to `consumer`.
    pub fn to_envelope(&self, consumer: &EndpointReference) -> Envelope {
        let body = Element::new(ns::WSNT, "Notify").child(self.to_element());
        let mut env = Envelope::new(body);
        MessageInfo::request(consumer.clone(), notify_action()).apply(&mut env);
        env
    }

    /// Extract all messages from a `Notify` envelope body.
    pub fn from_envelope(env: &Envelope) -> Vec<NotificationMessage> {
        if !env.body.name.is(ns::WSNT, "Notify") {
            return Vec::new();
        }
        env.body
            .find_all(ns::WSNT, "NotificationMessage")
            .filter_map(NotificationMessage::from_element)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_roundtrip() {
        let msg = NotificationMessage::new(
            "jobset-1/job/exit",
            Element::new(ns::UVACG, "ExitCode").text("0"),
        )
        .from_producer(EndpointReference::resource(
            "inproc://m1/Exec",
            "JobKey",
            "j7",
        ));
        let back = NotificationMessage::from_element(&msg.to_element()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn envelope_roundtrip_through_wire() {
        let msg = NotificationMessage::new("a/b", Element::local("Evt").text("x"));
        let consumer = EndpointReference::service("inproc://client/listener");
        let env = msg.to_envelope(&consumer);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        let info = MessageInfo::extract(&parsed).unwrap();
        assert_eq!(info.action, notify_action());
        let msgs = NotificationMessage::from_envelope(&parsed);
        assert_eq!(msgs, vec![msg]);
    }

    #[test]
    fn non_notify_envelopes_yield_nothing() {
        let env = Envelope::new(Element::local("Other"));
        assert!(NotificationMessage::from_envelope(&env).is_empty());
    }

    #[test]
    fn malformed_message_elements_are_skipped() {
        let body = Element::new(ns::WSNT, "Notify")
            .child(Element::new(ns::WSNT, "NotificationMessage")) // no Topic/Message
            .child(NotificationMessage::new("t", Element::local("P")).to_element());
        let env = Envelope::new(body);
        assert_eq!(NotificationMessage::from_envelope(&env).len(), 1);
    }
}
