//! The notification consumer side: a lightweight listener endpoint.
//!
//! The paper's client "starts one of WSRF.NET's light-weight
//! notification receivers to receive asynchronous, WS-Notification
//! compliant, notifications via HTTP". [`NotificationListener`] is that
//! receiver: it registers on the network, accepts one-way `Notify`
//! messages, records them, and invokes per-topic callbacks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use wsrf_soap::{EndpointReference, Envelope};
use wsrf_transport::{Endpoint, InProcNetwork};

use crate::message::NotificationMessage;
use crate::topics::{TopicExpression, TopicPath};

type Callback = Arc<dyn Fn(&NotificationMessage) + Send + Sync>;

struct Inner {
    received: Mutex<Vec<NotificationMessage>>,
    cv: Condvar,
    handlers: Mutex<Vec<(TopicExpression, Callback)>>,
    address: String,
    /// When false the message log is skipped: only `total` and the
    /// callbacks run. Open-loop load tests register hundreds of
    /// thousands of listeners; recording every delivery would be an
    /// unbounded memory sink.
    record: bool,
    /// Lifetime delivery count (unlike `count()`, never reset by
    /// `drain()`).
    total: AtomicUsize,
}

/// A registered notification listener. Cheap to clone.
#[derive(Clone)]
pub struct NotificationListener {
    inner: Arc<Inner>,
}

impl NotificationListener {
    /// Create and register a listener at `address` on the network.
    pub fn register(net: &InProcNetwork, address: &str) -> NotificationListener {
        Self::register_inner(net, address, true)
    }

    /// A counting-only listener: deliveries bump [`Self::total`] and run
    /// callbacks but are not recorded, so memory stays O(1) no matter
    /// how many notifications arrive. `count()`/`received()`/`drain()`
    /// see nothing; use `total()`.
    pub fn register_counting(net: &InProcNetwork, address: &str) -> NotificationListener {
        Self::register_inner(net, address, false)
    }

    fn register_inner(net: &InProcNetwork, address: &str, record: bool) -> NotificationListener {
        let listener = NotificationListener {
            inner: Arc::new(Inner {
                received: Mutex::new(Vec::new()),
                cv: Condvar::new(),
                handlers: Mutex::new(Vec::new()),
                address: address.to_string(),
                record,
                total: AtomicUsize::new(0),
            }),
        };
        net.register(address, Arc::new(listener.clone()) as Arc<dyn Endpoint>);
        listener
    }

    /// The listener's EPR, for use as a subscription consumer
    /// reference.
    pub fn epr(&self) -> EndpointReference {
        EndpointReference::service(&self.inner.address)
    }

    /// Install a callback for messages whose topic matches
    /// `expression`. Callbacks run on the delivering thread.
    pub fn on_topic(
        &self,
        expression: TopicExpression,
        f: impl Fn(&NotificationMessage) + Send + Sync + 'static,
    ) {
        self.inner.handlers.lock().push((expression, Arc::new(f)));
    }

    /// Take all recorded messages (clears the log).
    pub fn drain(&self) -> Vec<NotificationMessage> {
        std::mem::take(&mut *self.inner.received.lock())
    }

    /// Messages recorded so far (without clearing).
    pub fn received(&self) -> Vec<NotificationMessage> {
        self.inner.received.lock().clone()
    }

    /// Number of messages recorded so far.
    pub fn count(&self) -> usize {
        self.inner.received.lock().len()
    }

    /// Lifetime number of messages delivered (counted even in
    /// counting-only mode, and unaffected by `drain()`).
    pub fn total(&self) -> usize {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Block until at least `n` messages have arrived (real-time
    /// timeout). Returns false on timeout. Use only with a scaled
    /// clock; with a manual clock delivery is inline and waiting is
    /// unnecessary.
    pub fn wait_for(&self, n: usize, timeout: std::time::Duration) -> bool {
        let mut received = self.inner.received.lock();
        let deadline = std::time::Instant::now() + timeout;
        while received.len() < n {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.cv.wait_for(&mut received, deadline - now);
        }
        true
    }

    /// Block until some message satisfies `pred` (scans history too).
    pub fn wait_until(
        &self,
        timeout: std::time::Duration,
        pred: impl Fn(&NotificationMessage) -> bool,
    ) -> Option<NotificationMessage> {
        let mut received = self.inner.received.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(m) = received.iter().find(|m| pred(m)) {
                return Some(m.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.inner.cv.wait_for(&mut received, deadline - now);
        }
    }

    /// Messages on a specific topic recorded so far.
    pub fn on(&self, topic: &TopicPath) -> Vec<NotificationMessage> {
        self.inner
            .received
            .lock()
            .iter()
            .filter(|m| &m.topic == topic)
            .cloned()
            .collect()
    }
}

impl Endpoint for NotificationListener {
    fn handle(&self, env: Envelope) -> Option<Envelope> {
        let msgs = NotificationMessage::from_envelope(&env);
        if msgs.is_empty() {
            return None;
        }
        self.inner.total.fetch_add(msgs.len(), Ordering::Relaxed);
        // Record before invoking callbacks so a callback that
        // inspects history (or waits for counts) sees this message.
        if self.inner.record {
            let mut received = self.inner.received.lock();
            received.extend(msgs.iter().cloned());
        }
        self.inner.cv.notify_all();
        // Snapshot matching callbacks outside the lock: callbacks may
        // trigger further (inline) deliveries to this same listener,
        // which must not deadlock on the handlers lock.
        let to_run: Vec<(Callback, NotificationMessage)> = {
            let handlers = self.inner.handlers.lock();
            msgs.iter()
                .flat_map(|m| {
                    handlers
                        .iter()
                        .filter(|(expr, _)| expr.matches(&m.topic))
                        .map(move |(_, f)| (f.clone(), m.clone()))
                })
                .collect()
        };
        for (f, m) in to_run {
            f(&m);
        }
        None
    }

    fn name(&self) -> &str {
        "notification-listener"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Clock;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use wsrf_xml::Element;

    #[test]
    fn records_and_drains_messages() {
        let net = InProcNetwork::new(Clock::manual());
        let l = NotificationListener::register(&net, "inproc://c/l");
        let msg = NotificationMessage::new("a/b", Element::local("E"));
        net.send_oneway("inproc://c/l", msg.to_envelope(&l.epr()))
            .unwrap();
        assert_eq!(l.count(), 1);
        assert_eq!(l.on(&"a/b".into()).len(), 1);
        assert_eq!(l.drain().len(), 1);
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn callbacks_fire_for_matching_topics_only() {
        let net = InProcNetwork::new(Clock::manual());
        let l = NotificationListener::register(&net, "inproc://c/l");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        l.on_topic(TopicExpression::full("js//exit"), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        for topic in ["js/job/exit", "js/job/start", "js/exit"] {
            let msg = NotificationMessage::new(topic, Element::local("E"));
            net.send_oneway("inproc://c/l", msg.to_envelope(&l.epr()))
                .unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(l.count(), 3, "all messages recorded regardless of handlers");
    }

    #[test]
    fn counting_listener_counts_without_recording() {
        let net = InProcNetwork::new(Clock::manual());
        let l = NotificationListener::register_counting(&net, "inproc://c/l");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        l.on_topic(TopicExpression::full("t//"), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        for _ in 0..3 {
            let msg = NotificationMessage::new("t/x", Element::local("E"));
            net.send_oneway("inproc://c/l", msg.to_envelope(&l.epr()))
                .unwrap();
        }
        assert_eq!(l.total(), 3);
        assert_eq!(hits.load(Ordering::SeqCst), 3, "callbacks still fire");
        assert_eq!(l.count(), 0, "nothing recorded");
        assert!(l.received().is_empty());
    }

    #[test]
    fn total_survives_drain() {
        let net = InProcNetwork::new(Clock::manual());
        let l = NotificationListener::register(&net, "inproc://c/l");
        let msg = NotificationMessage::new("t", Element::local("E"));
        net.send_oneway("inproc://c/l", msg.to_envelope(&l.epr()))
            .unwrap();
        assert_eq!(l.drain().len(), 1);
        assert_eq!(l.count(), 0);
        assert_eq!(l.total(), 1);
    }

    #[test]
    fn non_notify_messages_ignored() {
        let net = InProcNetwork::new(Clock::manual());
        let l = NotificationListener::register(&net, "inproc://c/l");
        net.send_oneway("inproc://c/l", Envelope::new(Element::local("Other")))
            .unwrap();
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn wait_for_unblocks_on_delivery() {
        let net = InProcNetwork::new(Clock::scaled(1000.0));
        let l = NotificationListener::register(&net, "inproc://c/l");
        let net2 = net.clone();
        let epr = l.epr();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let msg = NotificationMessage::new("t", Element::local("E"));
            net2.send_oneway("inproc://c/l", msg.to_envelope(&epr))
                .unwrap();
        });
        assert!(l.wait_for(1, std::time::Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let net = InProcNetwork::new(Clock::manual());
        let l = NotificationListener::register(&net, "inproc://c/l");
        assert!(!l.wait_for(1, std::time::Duration::from_millis(30)));
    }
}
