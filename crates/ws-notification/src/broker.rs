//! WS-BrokeredNotification: the Notification Broker service.
//!
//! "While the web service generating the event could maintain its own
//! list of parties interested in receiving that event, it is more
//! convenient to use the Notification Broker service as a multicast
//! mechanism" (§4.3). The broker here is a full WSRF service whose
//! **resources are subscriptions**: they are created by `Subscribe`,
//! pausable, destroyable and lease-limited through the standard
//! WS-ResourceLifetime port types, and their state (consumer, topic
//! expression, paused flag) is visible through the standard
//! WS-ResourceProperties port types — one of the nicest illustrations
//! of the paper's "everything is a WS-Resource" theme.

use std::sync::Arc;

use simclock::{Clock, SimTime};
use wsrf_core::container::{action_uri, Ctx, OpKind, Service, ServiceBuilder};
use wsrf_core::faults;
use wsrf_core::properties::PropertyDoc;
use wsrf_core::store::ResourceStore;
use wsrf_soap::{ns, BaseFault, EndpointReference, Envelope, MessageInfo, SoapFault};
use wsrf_transport::{InProcNetwork, TransportError};
use wsrf_xml::{Element, QName};

use crate::message::{notify_action, NotificationMessage};
use crate::topics::{Dialect, TopicExpression};

/// Property names of a subscription resource.
fn p_consumer() -> QName {
    QName::new(ns::WSNT, "ConsumerReference")
}
fn p_expression() -> QName {
    QName::new(ns::WSNT, "TopicExpression")
}
fn p_paused() -> QName {
    QName::new(ns::WSNT, "Paused")
}

/// Build the Notification Broker service.
///
/// * `Subscribe` (WSNT action) — create a subscription resource.
/// * `Notify` (WSNT action, one-way) — fan a notification out to every
///   matching, unpaused subscription.
/// * `PauseSubscription` / `ResumeSubscription` (resource ops).
/// * `Destroy` / `SetTerminationTime` — inherited standard port types.
pub fn notification_broker(
    name: &str,
    address: &str,
    store: Arc<dyn ResourceStore>,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Arc<Service> {
    // WS-BaseNotification GetCurrentMessage: the last message seen on
    // each concrete topic, so late subscribers can catch up.
    let current: Arc<parking_lot::Mutex<std::collections::HashMap<String, NotificationMessage>>> =
        Arc::new(parking_lot::Mutex::new(std::collections::HashMap::new()));
    let current_notify = current.clone();
    let current_get = current.clone();
    ServiceBuilder::new(name, address, store)
        .key_property(format!("{{{}}}SubscriptionKey", ns::WSNT))
        .raw_operation(subscribe_action(), OpKind::Static, subscribe_op)
        .raw_operation(notify_action(), OpKind::Static, move |ctx| {
            notify_op(ctx, &current_notify)
        })
        .raw_operation(
            format!("{}/GetCurrentMessage", ns::WSNT),
            OpKind::Static,
            move |ctx| {
                let topic = ctx
                    .body
                    .find(ns::WSNT, "Topic")
                    .map(|t| t.text_content())
                    .filter(|t| !t.is_empty())
                    .ok_or_else(|| faults::bad_request("GetCurrentMessage requires Topic"))?;
                match current_get.lock().get(&topic) {
                    Some(msg) => {
                        Ok(Element::new(ns::WSNT, "GetCurrentMessageResponse")
                            .child(msg.to_element()))
                    }
                    None => Err(BaseFault::new(
                        "wsnt:NoCurrentMessageOnTopic",
                        format!("no message has been published on '{topic}'"),
                    )),
                }
            },
        )
        .raw_operation(
            format!("{}/PauseSubscription", ns::WSNT),
            OpKind::Resource,
            |ctx| set_paused_op(ctx, true),
        )
        .raw_operation(
            format!("{}/ResumeSubscription", ns::WSNT),
            OpKind::Resource,
            |ctx| set_paused_op(ctx, false),
        )
        .build(clock, net)
}

/// The `Subscribe` action URI.
pub fn subscribe_action() -> String {
    format!("{}/Subscribe", ns::WSNT)
}

fn subscribe_op(ctx: &mut Ctx<'_>) -> Result<Element, BaseFault> {
    let consumer_el = ctx
        .body
        .find(ns::WSNT, "ConsumerReference")
        .ok_or_else(|| faults::bad_request("Subscribe requires ConsumerReference"))?;
    let consumer = EndpointReference::from_element(consumer_el)
        .map_err(|e| faults::bad_request(&format!("bad ConsumerReference: {e}")))?;
    let expr_el = ctx
        .body
        .find(ns::WSNT, "TopicExpression")
        .ok_or_else(|| faults::bad_request("Subscribe requires TopicExpression"))?;
    let dialect = expr_el
        .attr_value("Dialect")
        .and_then(Dialect::from_uri)
        .ok_or_else(|| faults::bad_request("unknown topic expression dialect"))?;
    let expr = TopicExpression::parse(dialect, &expr_el.text_content());

    let mut doc = PropertyDoc::new();
    doc.update(
        p_consumer(),
        vec![consumer.to_element_named(ns::WSNT, "ConsumerReference")],
    );
    doc.update(
        p_expression(),
        vec![Element::with_name(p_expression())
            .attr("Dialect", dialect.uri())
            .text(expr.text())],
    );
    doc.set_text(p_paused(), "false");
    let sub_epr = ctx.core.create_resource(doc)?;

    // Optional lease.
    if let Some(itt) = ctx.body.find(ns::WSNT, "InitialTerminationTime") {
        let text = itt.text_content();
        if !text.trim().is_empty() {
            let secs: f64 = text
                .trim()
                .parse()
                .map_err(|_| faults::bad_request("InitialTerminationTime must be seconds"))?;
            let key = sub_epr.resource_key().unwrap().to_string();
            ctx.core
                .set_termination_time(&key, Some(SimTime::from_secs_f64(secs)));
        }
    }

    Ok(Element::new(ns::WSNT, "SubscribeResponse")
        .child(sub_epr.to_element_named(ns::WSNT, "SubscriptionReference")))
}

fn set_paused_op(ctx: &mut Ctx<'_>, paused: bool) -> Result<Element, BaseFault> {
    let doc = ctx.resource_mut()?;
    doc.set_text(p_paused(), if paused { "true" } else { "false" });
    let local = if paused {
        "PauseSubscriptionResponse"
    } else {
        "ResumeSubscriptionResponse"
    };
    Ok(Element::new(ns::WSNT, local))
}

fn notify_op(
    ctx: &mut Ctx<'_>,
    current: &parking_lot::Mutex<std::collections::HashMap<String, NotificationMessage>>,
) -> Result<Element, BaseFault> {
    // Decode the incoming notification(s).
    let messages: Vec<NotificationMessage> = ctx
        .body
        .find_all(ns::WSNT, "NotificationMessage")
        .filter_map(NotificationMessage::from_element)
        .collect();
    if messages.is_empty() {
        return Err(faults::bad_request("Notify carried no NotificationMessage"));
    }
    {
        let mut cur = current.lock();
        for m in &messages {
            cur.insert(m.topic.to_string(), m.clone());
        }
    }

    // Fan out to matching subscriptions, propagating the publisher's
    // trace context so deliveries stay in the submission's span tree.
    let trace = ctx.trace;
    let core = ctx.core.clone();
    let registry = &core.metrics;
    let fanout_span = registry.timer("broker.fanout").start(&core.clock);
    registry
        .counter("broker.publishes")
        .add(messages.len() as u64);
    if registry.is_enabled() {
        for m in &messages {
            registry
                .counter(&format!("broker.topic.{}.publishes", m.topic))
                .inc();
        }
    }
    let mut delivered = 0usize;
    // Deliver in subscription order (keys are "<svc>-<n>"): consumers
    // that subscribed earlier hear about an event before consumers
    // whose handling might publish *further* events, which keeps
    // client-visible causality intact on the inline test network.
    let mut keys = core.store.list(&core.name);
    keys.sort_by_key(|k| (k.len(), k.clone()));
    for key in keys {
        let Ok(doc) = core.store.load(&core.name, &key) else {
            continue;
        };
        if doc.text(&p_paused()).as_deref() == Some("true") {
            continue;
        }
        let Some(expr_el) = doc.get(&p_expression()).first() else {
            continue;
        };
        let Some(dialect) = expr_el.attr_value("Dialect").and_then(Dialect::from_uri) else {
            continue;
        };
        let expr = TopicExpression::parse(dialect, &expr_el.text_content());
        let Some(consumer_el) = doc.get(&p_consumer()).first() else {
            continue;
        };
        let Ok(consumer) = EndpointReference::from_element(consumer_el) else {
            continue;
        };
        for m in &messages {
            if expr.matches(&m.topic) {
                // Forward preserving the original producer reference.
                let mut env = m.to_envelope(&consumer);
                if let Some(tc) = &trace {
                    tc.stamp(&mut env);
                }
                let _ = core.net.send_oneway(&consumer.address, env);
                delivered += 1;
                if registry.is_enabled() {
                    registry
                        .counter(&format!("broker.topic.{}.deliveries", m.topic))
                        .inc();
                }
            }
        }
    }
    registry.counter("broker.deliveries").add(delivered as u64);
    fanout_span.finish();
    Ok(Element::new(ns::WSNT, "NotifyResponse").attr("delivered", delivered.to_string()))
}

// ---------------------------------------------------------------------
// Client-side helpers
// ---------------------------------------------------------------------

/// Subscribe `consumer` to `expression` at the broker; returns the
/// subscription's EPR.
pub fn subscribe(
    net: &InProcNetwork,
    broker: &EndpointReference,
    consumer: &EndpointReference,
    expression: &TopicExpression,
    initial_termination: Option<f64>,
) -> Result<EndpointReference, SoapFault> {
    let mut body = Element::new(ns::WSNT, "Subscribe")
        .child(consumer.to_element_named(ns::WSNT, "ConsumerReference"))
        .child(
            Element::new(ns::WSNT, "TopicExpression")
                .attr("Dialect", expression.dialect.uri())
                .text(expression.text()),
        );
    if let Some(secs) = initial_termination {
        body.push_child(Element::new(ns::WSNT, "InitialTerminationTime").text(format!("{secs}")));
    }
    let mut env = Envelope::new(body);
    MessageInfo::request(broker.clone(), subscribe_action()).apply(&mut env);
    let resp = net
        .call(&broker.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    let sref = resp
        .body
        .find(ns::WSNT, "SubscriptionReference")
        .ok_or_else(|| SoapFault::server("SubscribeResponse missing SubscriptionReference"))?;
    EndpointReference::from_element(sref).map_err(|e| SoapFault::server(e.to_string()))
}

/// Publish a notification *through* the broker (one-way).
pub fn publish(
    net: &InProcNetwork,
    broker: &EndpointReference,
    msg: &NotificationMessage,
) -> Result<(), TransportError> {
    net.send_oneway(&broker.address, msg.to_envelope(broker))
}

/// Pause or resume a subscription by its EPR.
pub fn set_subscription_paused(
    net: &InProcNetwork,
    subscription: &EndpointReference,
    paused: bool,
) -> Result<(), SoapFault> {
    let op = if paused {
        "PauseSubscription"
    } else {
        "ResumeSubscription"
    };
    let mut env = Envelope::new(Element::new(ns::WSNT, op));
    MessageInfo::request(subscription.clone(), format!("{}/{op}", ns::WSNT)).apply(&mut env);
    let resp = net
        .call(&subscription.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    match resp.fault() {
        Some(f) => Err(f),
        None => Ok(()),
    }
}

/// Fetch the last message published on a concrete topic
/// (WS-BaseNotification `GetCurrentMessage`).
pub fn get_current_message(
    net: &InProcNetwork,
    broker: &EndpointReference,
    topic: &str,
) -> Result<Option<NotificationMessage>, SoapFault> {
    let body = Element::new(ns::WSNT, "GetCurrentMessage")
        .child(Element::new(ns::WSNT, "Topic").text(topic));
    let mut env = Envelope::new(body);
    MessageInfo::request(broker.clone(), format!("{}/GetCurrentMessage", ns::WSNT)).apply(&mut env);
    let resp = net
        .call(&broker.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        if f.error_code() == Some("wsnt:NoCurrentMessageOnTopic") {
            return Ok(None);
        }
        return Err(f);
    }
    Ok(resp
        .body
        .find(ns::WSNT, "NotificationMessage")
        .and_then(NotificationMessage::from_element))
}

/// The action URI helper shared with `wsrf-core` services (re-export
/// for symmetry with service-defined operations).
pub fn broker_action(service: &str, op: &str) -> String {
    action_uri(service, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::NotificationListener;
    use wsrf_core::store::MemoryStore;

    struct Fixture {
        net: Arc<InProcNetwork>,
        clock: Clock,
        broker_epr: EndpointReference,
        #[allow(dead_code)]
        broker: Arc<Service>,
    }

    fn fixture() -> Fixture {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let broker = notification_broker(
            "Broker",
            "inproc://hub/Broker",
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
        );
        broker.register(&net);
        let broker_epr = broker.core().service_epr();
        Fixture {
            net,
            clock,
            broker_epr,
            broker,
        }
    }

    fn msg(topic: &str) -> NotificationMessage {
        NotificationMessage::new(topic, Element::new(ns::UVACG, "Evt").text(topic))
            .from_producer(EndpointReference::service("inproc://m1/Exec"))
    }

    #[test]
    fn broker_multicasts_to_matching_subscribers() {
        let f = fixture();
        let sched = NotificationListener::register(&f.net, "inproc://hub/sched-listener");
        let client = NotificationListener::register(&f.net, "inproc://client/listener");
        let other = NotificationListener::register(&f.net, "inproc://other/listener");
        subscribe(
            &f.net,
            &f.broker_epr,
            &sched.epr(),
            &TopicExpression::full("js-1//"),
            None,
        )
        .unwrap();
        subscribe(
            &f.net,
            &f.broker_epr,
            &client.epr(),
            &TopicExpression::full("js-1//"),
            None,
        )
        .unwrap();
        subscribe(
            &f.net,
            &f.broker_epr,
            &other.epr(),
            &TopicExpression::full("js-2//"),
            None,
        )
        .unwrap();

        publish(&f.net, &f.broker_epr, &msg("js-1/job/exit")).unwrap();
        assert_eq!(sched.count(), 1);
        assert_eq!(client.count(), 1);
        assert_eq!(other.count(), 0);
        // Producer reference survives brokering.
        assert_eq!(
            sched.received()[0].producer.as_ref().unwrap().address,
            "inproc://m1/Exec"
        );
    }

    #[test]
    fn pause_and_resume() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let sub = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            None,
        )
        .unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1);

        set_subscription_paused(&f.net, &sub, true).unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1, "paused");

        set_subscription_paused(&f.net, &sub, false).unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 2, "resumed");
    }

    #[test]
    fn subscription_is_a_queryable_resource() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let sub = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::full("a/*/c"),
            None,
        )
        .unwrap();
        // Read its TopicExpression through the standard port type.
        let mut env =
            Envelope::new(Element::new(ns::WSRP, "GetResourceProperty").text("TopicExpression"));
        MessageInfo::request(
            sub,
            wsrf_core::porttypes::wsrp_action("GetResourceProperty"),
        )
        .apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(resp.body.text_content(), "a/*/c");
    }

    #[test]
    fn subscription_lease_expires() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            Some(30.0),
        )
        .unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1);
        f.clock.advance(std::time::Duration::from_secs(31));
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1, "expired subscription no longer delivers");
    }

    #[test]
    fn destroy_subscription_stops_delivery() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let sub = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            None,
        )
        .unwrap();
        let mut env = Envelope::new(Element::new(ns::WSRL, "Destroy"));
        MessageInfo::request(sub, wsrf_core::porttypes::wsrl_action("Destroy")).apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert!(!resp.is_fault());
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn get_current_message_returns_latest_per_topic() {
        let f = fixture();
        assert_eq!(
            get_current_message(&f.net, &f.broker_epr, "t").unwrap(),
            None
        );
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        publish(&f.net, &f.broker_epr, &msg("other")).unwrap();
        let m2 = NotificationMessage::new("t", Element::new(ns::UVACG, "Evt").text("second"));
        publish(&f.net, &f.broker_epr, &m2).unwrap();
        let got = get_current_message(&f.net, &f.broker_epr, "t")
            .unwrap()
            .unwrap();
        assert_eq!(got.payload.text_content(), "second");
        let other = get_current_message(&f.net, &f.broker_epr, "other")
            .unwrap()
            .unwrap();
        assert_eq!(other.topic.to_string(), "other");
    }

    #[test]
    fn get_current_message_requires_topic() {
        let f = fixture();
        let mut env = Envelope::new(Element::new(ns::WSNT, "GetCurrentMessage"));
        MessageInfo::request(
            f.broker_epr.clone(),
            format!("{}/GetCurrentMessage", ns::WSNT),
        )
        .apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(resp.fault().unwrap().error_code(), Some("wsrf:BadRequest"));
    }

    #[test]
    fn subscribe_without_consumer_faults() {
        let f = fixture();
        let mut env = Envelope::new(Element::new(ns::WSNT, "Subscribe"));
        MessageInfo::request(f.broker_epr.clone(), subscribe_action()).apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(resp.fault().unwrap().error_code(), Some("wsrf:BadRequest"));
    }

    #[test]
    fn notify_with_no_messages_faults() {
        let f = fixture();
        let mut env = Envelope::new(Element::new(ns::WSNT, "Notify"));
        MessageInfo::request(f.broker_epr.clone(), notify_action()).apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert!(resp.is_fault());
    }
}
