//! WS-BrokeredNotification: the Notification Broker service.
//!
//! "While the web service generating the event could maintain its own
//! list of parties interested in receiving that event, it is more
//! convenient to use the Notification Broker service as a multicast
//! mechanism" (§4.3). The broker here is a full WSRF service whose
//! **resources are subscriptions**: they are created by `Subscribe`,
//! pausable, destroyable and lease-limited through the standard
//! WS-ResourceLifetime port types, and their state (consumer, topic
//! expression, paused flag) is visible through the standard
//! WS-ResourceProperties port types — one of the nicest illustrations
//! of the paper's "everything is a WS-Resource" theme.
//!
//! # The sharded fan-out path
//!
//! The store stays the source of truth for subscription state, but
//! `Notify` no longer rescans it: a [`SubscriptionIndex`] keeps
//! compiled entries (parsed [`TopicExpression`] + consumer EPR +
//! paused flag) bucketed by the expression's concrete root prefix
//! across hash shards, with a catch-all bucket for wildcard-first
//! expressions (`//exit`). The index is a write-through cache: every
//! mutation of the broker's resource table — `Subscribe`,
//! `Pause`/`Resume`, WSRL `Destroy`/`SetTerminationTime`, lease-expiry
//! timers, even `SetResourceProperties` — funnels through the
//! [`ResourceStore`] decorator that owns the invalidation, so no code
//! path can strand a stale entry.
//!
//! Delivery is inline (synchronous, subscription-ordered) on manual
//! clocks — the deterministic test network depends on that — and
//! batched through per-consumer queues drained by a small worker pool
//! on scaled/realtime clocks, so one slow consumer occupies one worker
//! instead of serializing the whole fan-out. Duplicate notifications
//! to the same consumer (overlapping subscriptions) are coalesced.
//! Transport failures are counted, reported in `NotifyResponse`, and
//! auto-pause a subscription after a configurable streak.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use simclock::{Clock, SimTime};
use wsrf_core::container::{action_uri, Ctx, OpKind, Service, ServiceBuilder};
use wsrf_core::faults;
use wsrf_core::properties::PropertyDoc;
use wsrf_core::store::{ResourceStore, StoreError};
use wsrf_obs::{Counter, CounterFamily, EventKind, EventLog, Gauge, Severity};
use wsrf_soap::{ns, BaseFault, EndpointReference, Envelope, MessageInfo, SoapFault, TraceContext};
use wsrf_transport::pool::ThreadPool;
use wsrf_transport::{InProcNetwork, TransportError};
use wsrf_xml::xpath::Path;
use wsrf_xml::{Element, QName};

use crate::message::{notify_action, NotificationMessage};
use crate::topics::{Dialect, TopicExpression, TopicPath};

/// Property names of a subscription resource.
fn p_consumer() -> QName {
    QName::new(ns::WSNT, "ConsumerReference")
}
fn p_expression() -> QName {
    QName::new(ns::WSNT, "TopicExpression")
}
fn p_paused() -> QName {
    QName::new(ns::WSNT, "Paused")
}

/// Tunables of the broker fan-out path.
#[derive(Clone)]
pub struct BrokerConfig {
    /// Match publishes against the sharded subscription index
    /// (default). `false` keeps the legacy rescan path — `store.list`
    /// + `store.load` + re-parse of every subscription per publish —
    /// as the A/B arm of the E13 open-loop experiment.
    pub sharded: bool,
    /// Worker threads draining per-consumer delivery queues on
    /// non-manual clocks (manual-clock delivery stays inline).
    pub delivery_workers: usize,
    /// Consecutive transport failures after which a subscription is
    /// auto-paused (visible through its `Paused` resource property).
    pub autopause_after: u32,
    /// Maximum concrete topics retained by the `GetCurrentMessage`
    /// cache.
    pub current_cache_cap: usize,
    /// Maximum distinct topic *roots* minting their own
    /// `broker.topic.<root>.*` counter pair; the rest share
    /// `broker.topic.other.*`.
    pub topic_root_cap: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            sharded: true,
            delivery_workers: 4,
            autopause_after: 3,
            current_cache_cap: 512,
            topic_root_cap: 64,
        }
    }
}

impl BrokerConfig {
    /// The legacy store-rescan fan-out (benchmark comparison arm).
    pub fn rescan() -> Self {
        BrokerConfig {
            sharded: false,
            ..BrokerConfig::default()
        }
    }
}

// ---------------------------------------------------------------------
// Sharded subscription index
// ---------------------------------------------------------------------

const INDEX_SHARDS: usize = 16;

fn shard_of(root: &str) -> usize {
    let mut h = DefaultHasher::new();
    root.hash(&mut h);
    (h.finish() as usize) % INDEX_SHARDS
}

/// One subscription, compiled once at write time instead of re-parsed
/// on every publish.
struct CompiledSub {
    key: String,
    expr: TopicExpression,
    consumer: EndpointReference,
    paused: AtomicBool,
    /// Set when the entry leaves the index (destroy, lease expiry,
    /// recompile); an in-flight fan-out that already snapshotted this
    /// entry re-checks the flag at send time so a destroyed
    /// subscription cannot deliver after `Destroy` acknowledged.
    dead: AtomicBool,
    consecutive_failures: AtomicU32,
}

impl CompiledSub {
    fn compile(key: &str, doc: &PropertyDoc) -> Option<CompiledSub> {
        let expr_el = doc.get(&p_expression()).first()?;
        let dialect = expr_el.attr_value("Dialect").and_then(Dialect::from_uri)?;
        let expr = TopicExpression::parse(dialect, &expr_el.text_content());
        let consumer = EndpointReference::from_element(doc.get(&p_consumer()).first()?).ok()?;
        Some(CompiledSub {
            key: key.to_string(),
            expr,
            consumer,
            paused: AtomicBool::new(doc.text(&p_paused()).as_deref() == Some("true")),
            dead: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
        })
    }

    fn live(&self) -> bool {
        !self.dead.load(Ordering::Acquire) && !self.paused.load(Ordering::Acquire)
    }
}

/// Write-through cache of compiled subscriptions, bucketed by the
/// expression's concrete root prefix. `notify_op` touches exactly one
/// shard bucket (plus the wildcard bucket) per message instead of the
/// whole resource table.
struct SubscriptionIndex {
    /// root → entries, spread over hash shards for lock granularity.
    shards: Vec<RwLock<HashMap<String, Vec<Arc<CompiledSub>>>>>,
    /// Expressions with no concrete first segment (`//exit`, `*/x`)
    /// can match any root; scanned on every publish.
    wildcard: RwLock<Vec<Arc<CompiledSub>>>,
    /// Control-plane lookup for invalidation; never touched by
    /// `notify_op`.
    by_key: RwLock<HashMap<String, Arc<CompiledSub>>>,
    size: Gauge,
}

impl SubscriptionIndex {
    fn new(size: Gauge) -> SubscriptionIndex {
        SubscriptionIndex {
            shards: (0..INDEX_SHARDS).map(|_| RwLock::default()).collect(),
            wildcard: RwLock::default(),
            by_key: RwLock::default(),
            size,
        }
    }

    /// Reflect a created or saved subscription document. Pause/resume
    /// saves update the compiled entry in place; a changed expression
    /// or consumer recompiles and re-buckets it.
    fn upsert(&self, key: &str, doc: &PropertyDoc) {
        let Some(fresh) = CompiledSub::compile(key, doc) else {
            // The doc no longer parses as a subscription; drop any
            // stale entry rather than match on garbage.
            self.remove(key);
            return;
        };
        let mut by_key = self.by_key.write();
        match by_key.get(key) {
            Some(existing)
                if existing.expr == fresh.expr
                    && existing.consumer.address == fresh.consumer.address =>
            {
                let paused = fresh.paused.load(Ordering::Relaxed);
                existing.paused.store(paused, Ordering::Release);
                if !paused {
                    // A resume forgives the failure streak.
                    existing.consecutive_failures.store(0, Ordering::Relaxed);
                }
                return;
            }
            Some(_) => {
                let old = by_key.remove(key).unwrap();
                old.dead.store(true, Ordering::Release);
                self.evict_from_bucket(&old);
            }
            None => {}
        }
        let sub = Arc::new(fresh);
        match sub.expr.concrete_root() {
            Some(root) => self.shards[shard_of(root)]
                .write()
                .entry(root.to_string())
                .or_default()
                .push(sub.clone()),
            None => self.wildcard.write().push(sub.clone()),
        }
        by_key.insert(key.to_string(), sub);
        self.size.set(by_key.len() as i64);
    }

    /// Reflect a destroyed subscription (WSRL `Destroy`, lease expiry).
    fn remove(&self, key: &str) {
        let mut by_key = self.by_key.write();
        if let Some(old) = by_key.remove(key) {
            old.dead.store(true, Ordering::Release);
            self.evict_from_bucket(&old);
            self.size.set(by_key.len() as i64);
        }
    }

    fn evict_from_bucket(&self, sub: &Arc<CompiledSub>) {
        match sub.expr.concrete_root() {
            Some(root) => {
                let mut shard = self.shards[shard_of(root)].write();
                if let Some(bucket) = shard.get_mut(root) {
                    bucket.retain(|s| !Arc::ptr_eq(s, sub));
                    if bucket.is_empty() {
                        shard.remove(root);
                    }
                }
            }
            None => self.wildcard.write().retain(|s| !Arc::ptr_eq(s, sub)),
        }
    }

    /// Live, unpaused entries whose expression matches `topic`: the
    /// topic root's bucket plus the wildcard bucket — never the full
    /// table.
    fn matching(&self, topic: &TopicPath) -> Vec<Arc<CompiledSub>> {
        let mut out = Vec::new();
        let root = topic.root();
        {
            let shard = self.shards[shard_of(root)].read();
            if let Some(bucket) = shard.get(root) {
                out.extend(
                    bucket
                        .iter()
                        .filter(|s| s.live() && s.expr.matches(topic))
                        .cloned(),
                );
            }
        }
        out.extend(
            self.wildcard
                .read()
                .iter()
                .filter(|s| s.live() && s.expr.matches(topic))
                .cloned(),
        );
        out
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.by_key.read().len()
    }
}

/// [`ResourceStore`] decorator owning index invalidation. Wrapping the
/// store (rather than hooking individual operations) catches *every*
/// mutation path: the Subscribe handler, the standard WSRL lifetime
/// ops, lease-expiry timers firing `store.destroy` directly from the
/// clock, and WSRP `SetResourceProperties` edits.
struct IndexingStore {
    inner: Arc<dyn ResourceStore>,
    /// The broker's service/table name; other tables on a shared store
    /// pass through untouched.
    service: String,
    index: Arc<SubscriptionIndex>,
}

impl ResourceStore for IndexingStore {
    fn create(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        self.inner.create(service, key, doc)?;
        if service == self.service {
            self.index.upsert(key, doc);
        }
        Ok(())
    }

    fn load(&self, service: &str, key: &str) -> Result<PropertyDoc, StoreError> {
        self.inner.load(service, key)
    }

    fn save(&self, service: &str, key: &str, doc: &PropertyDoc) -> Result<(), StoreError> {
        self.inner.save(service, key, doc)?;
        if service == self.service {
            self.index.upsert(key, doc);
        }
        Ok(())
    }

    fn destroy(&self, service: &str, key: &str) -> Result<(), StoreError> {
        let result = self.inner.destroy(service, key);
        if service == self.service
            && (result.is_ok() || matches!(result, Err(StoreError::NotFound(_))))
        {
            self.index.remove(key);
        }
        result
    }

    fn exists(&self, service: &str, key: &str) -> bool {
        self.inner.exists(service, key)
    }

    fn list(&self, service: &str) -> Vec<String> {
        self.inner.list(service)
    }

    fn query(&self, service: &str, path: &Path) -> Vec<String> {
        self.inner.query(service, path)
    }

    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }
}

// ---------------------------------------------------------------------
// Bounded GetCurrentMessage cache
// ---------------------------------------------------------------------

/// Two-generation (segmented-LRU) cache of the last message per
/// concrete topic. Inserts land in `hot`; when `hot` fills half the
/// cap, it becomes `cold` and a fresh generation starts, so topics not
/// re-published (or re-read) within a generation age out. Total size
/// is bounded by `cap` with O(1) operations — no per-publish eviction
/// scan.
struct CurrentCache {
    cap: usize,
    hot: HashMap<String, NotificationMessage>,
    cold: HashMap<String, NotificationMessage>,
}

impl CurrentCache {
    fn new(cap: usize) -> CurrentCache {
        CurrentCache {
            cap: cap.max(2),
            hot: HashMap::new(),
            cold: HashMap::new(),
        }
    }

    fn insert(&mut self, topic: String, msg: NotificationMessage) {
        self.cold.remove(&topic);
        self.hot.insert(topic, msg);
        if self.hot.len() >= (self.cap / 2).max(1) {
            self.cold = std::mem::take(&mut self.hot);
        }
    }

    fn get(&mut self, topic: &str) -> Option<&NotificationMessage> {
        if !self.hot.contains_key(topic) {
            if let Some(m) = self.cold.remove(topic) {
                self.hot.insert(topic.to_string(), m);
            }
        }
        self.hot.get(topic)
    }

    fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }
}

// ---------------------------------------------------------------------
// Delivery fabric
// ---------------------------------------------------------------------

/// How many queued deliveries a worker takes per queue visit.
const DRAIN_BATCH: usize = 64;

struct Delivery {
    sub: Arc<CompiledSub>,
    msg: Arc<NotificationMessage>,
    trace: Option<TraceContext>,
}

struct ConsumerQueue {
    q: VecDeque<Delivery>,
    /// True while a pool worker owns this queue; guarantees per-consumer
    /// FIFO with at most one drainer.
    draining: bool,
}

enum SendOutcome {
    Delivered,
    Failed,
    Skipped,
}

/// Owns the actual sends: failure accounting, auto-pause, and (on
/// non-manual clocks) the per-consumer batched queues drained by a
/// small worker pool.
struct DeliveryFabric {
    net: Arc<InProcNetwork>,
    /// The broker's (indexing) store — auto-pause writes through it so
    /// the `Paused` RP and the compiled entry stay in sync.
    store: Arc<dyn ResourceStore>,
    service: String,
    autopause_after: u32,
    failures: Counter,
    autopaused: Counter,
    /// Structured event log + clock for the auto-pause event's
    /// virtual timestamp.
    events: EventLog,
    clock: Clock,
    workers: usize,
    pool: OnceLock<ThreadPool>,
    queues: Mutex<HashMap<String, Arc<Mutex<ConsumerQueue>>>>,
}

impl DeliveryFabric {
    fn send_now(
        &self,
        sub: &CompiledSub,
        msg: &NotificationMessage,
        trace: Option<TraceContext>,
    ) -> SendOutcome {
        if !sub.live() {
            return SendOutcome::Skipped;
        }
        // Forward preserving the original producer reference.
        let mut env = msg.to_envelope(&sub.consumer);
        if let Some(tc) = &trace {
            tc.stamp(&mut env);
        }
        match self.net.send_oneway(&sub.consumer.address, env) {
            Ok(()) => {
                sub.consecutive_failures.store(0, Ordering::Relaxed);
                SendOutcome::Delivered
            }
            Err(_) => {
                self.failures.inc();
                let streak = sub.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
                if streak >= self.autopause_after {
                    self.autopause(sub);
                }
                SendOutcome::Failed
            }
        }
    }

    /// Pause a subscription whose consumer keeps failing. Written
    /// through the store so the `Paused` resource property reflects it
    /// (and, via the indexing decorator, the compiled entry too).
    fn autopause(&self, sub: &CompiledSub) {
        if sub.paused.swap(true, Ordering::AcqRel) {
            return;
        }
        self.autopaused.inc();
        let after = self.autopause_after;
        self.events.emit(
            Severity::Warn,
            EventKind::DeliveryAutopause,
            &self.service,
            self.clock.now().as_nanos(),
            || {
                format!(
                    "subscription {} auto-paused after {after} delivery failures",
                    sub.key
                )
            },
        );
        if let Ok(mut doc) = self.store.load(&self.service, &sub.key) {
            doc.set_text(p_paused(), "true");
            let _ = self.store.save(&self.service, &sub.key, &doc);
        }
    }

    fn pool(&self) -> &ThreadPool {
        let workers = self.workers;
        self.pool
            .get_or_init(|| ThreadPool::new(workers, "broker-delivery"))
    }

    fn enqueue(self: &Arc<Self>, delivery: Delivery) {
        let addr = delivery.sub.consumer.address.clone();
        let queue = self
            .queues
            .lock()
            .entry(addr)
            .or_insert_with(|| {
                Arc::new(Mutex::new(ConsumerQueue {
                    q: VecDeque::new(),
                    draining: false,
                }))
            })
            .clone();
        let start_drain = {
            let mut q = queue.lock();
            q.q.push_back(delivery);
            if q.draining {
                false
            } else {
                q.draining = true;
                true
            }
        };
        if start_drain {
            let fabric = self.clone();
            self.pool().execute(move || fabric.drain(&queue));
        }
    }

    /// Drain one consumer's queue in batches. A slow consumer pins one
    /// worker; every other consumer keeps flowing on the rest of the
    /// pool.
    fn drain(&self, queue: &Arc<Mutex<ConsumerQueue>>) {
        loop {
            let batch: Vec<Delivery> = {
                let mut q = queue.lock();
                if q.q.is_empty() {
                    q.draining = false;
                    return;
                }
                let n = q.q.len().min(DRAIN_BATCH);
                q.q.drain(..n).collect()
            };
            for d in batch {
                let _ = self.send_now(&d.sub, &d.msg, d.trace);
            }
        }
    }
}

/// Everything the broker's operation closures share.
struct BrokerState {
    /// `Some` on the sharded path, `None` on the legacy rescan arm.
    index: Option<Arc<SubscriptionIndex>>,
    fabric: Arc<DeliveryFabric>,
    current: Mutex<CurrentCache>,
    cache_size: Gauge,
    publishes: Counter,
    deliveries: Counter,
    coalesced: Counter,
    topic_publishes: CounterFamily,
    topic_deliveries: CounterFamily,
}

/// Build the Notification Broker service with default tunables.
///
/// * `Subscribe` (WSNT action) — create a subscription resource.
/// * `Notify` (WSNT action, one-way) — fan a notification out to every
///   matching, unpaused subscription.
/// * `PauseSubscription` / `ResumeSubscription` (resource ops).
/// * `Destroy` / `SetTerminationTime` — inherited standard port types.
pub fn notification_broker(
    name: &str,
    address: &str,
    store: Arc<dyn ResourceStore>,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Arc<Service> {
    notification_broker_with(name, address, store, clock, net, BrokerConfig::default())
}

/// [`notification_broker`] with explicit [`BrokerConfig`] tunables.
pub fn notification_broker_with(
    name: &str,
    address: &str,
    store: Arc<dyn ResourceStore>,
    clock: Clock,
    net: Arc<InProcNetwork>,
    config: BrokerConfig,
) -> Arc<Service> {
    let registry = net.metrics_registry().clone();
    let index = config.sharded.then(|| {
        Arc::new(SubscriptionIndex::new(
            registry.gauge("broker.index.subscriptions"),
        ))
    });
    let effective_store: Arc<dyn ResourceStore> = match &index {
        Some(ix) => Arc::new(IndexingStore {
            inner: store,
            service: name.to_string(),
            index: ix.clone(),
        }),
        None => store,
    };
    // A durable store may already hold subscriptions from a previous
    // incarnation; seed the index so they match immediately.
    if let Some(ix) = &index {
        for key in effective_store.list(name) {
            if let Ok(doc) = effective_store.load(name, &key) {
                ix.upsert(&key, &doc);
            }
        }
    }
    let fabric = Arc::new(DeliveryFabric {
        net: net.clone(),
        store: effective_store.clone(),
        service: name.to_string(),
        autopause_after: config.autopause_after.max(1),
        failures: registry.counter("broker.delivery_failures"),
        autopaused: registry.counter("broker.autopaused"),
        events: registry.events().clone(),
        clock: clock.clone(),
        workers: config.delivery_workers.max(1),
        pool: OnceLock::new(),
        queues: Mutex::new(HashMap::new()),
    });
    let state = Arc::new(BrokerState {
        index,
        fabric,
        current: Mutex::new(CurrentCache::new(config.current_cache_cap)),
        cache_size: registry.gauge("broker.current_cache.size"),
        publishes: registry.counter("broker.publishes"),
        deliveries: registry.counter("broker.deliveries"),
        coalesced: registry.counter("broker.coalesced"),
        topic_publishes: registry.counter_family(
            "broker.topic",
            "publishes",
            config.topic_root_cap,
        ),
        topic_deliveries: registry.counter_family(
            "broker.topic",
            "deliveries",
            config.topic_root_cap,
        ),
    });
    let s_notify = state.clone();
    let s_get = state;
    ServiceBuilder::new(name, address, effective_store)
        .key_property(format!("{{{}}}SubscriptionKey", ns::WSNT))
        .raw_operation(subscribe_action(), OpKind::Static, subscribe_op)
        .raw_operation(notify_action(), OpKind::Static, move |ctx| {
            notify_op(ctx, &s_notify)
        })
        .raw_operation(
            format!("{}/GetCurrentMessage", ns::WSNT),
            OpKind::Static,
            move |ctx| {
                let topic = ctx
                    .body
                    .find(ns::WSNT, "Topic")
                    .map(|t| t.text_content())
                    .filter(|t| !t.is_empty())
                    .ok_or_else(|| faults::bad_request("GetCurrentMessage requires Topic"))?;
                match s_get.current.lock().get(&topic) {
                    Some(msg) => {
                        Ok(Element::new(ns::WSNT, "GetCurrentMessageResponse")
                            .child(msg.to_element()))
                    }
                    None => Err(BaseFault::new(
                        "wsnt:NoCurrentMessageOnTopic",
                        format!("no message has been published on '{topic}'"),
                    )),
                }
            },
        )
        .raw_operation(
            format!("{}/PauseSubscription", ns::WSNT),
            OpKind::Resource,
            |ctx| set_paused_op(ctx, true),
        )
        .raw_operation(
            format!("{}/ResumeSubscription", ns::WSNT),
            OpKind::Resource,
            |ctx| set_paused_op(ctx, false),
        )
        .build(clock, net)
}

/// The `Subscribe` action URI.
pub fn subscribe_action() -> String {
    format!("{}/Subscribe", ns::WSNT)
}

fn subscribe_op(ctx: &mut Ctx<'_>) -> Result<Element, BaseFault> {
    let consumer_el = ctx
        .body
        .find(ns::WSNT, "ConsumerReference")
        .ok_or_else(|| faults::bad_request("Subscribe requires ConsumerReference"))?;
    let consumer = EndpointReference::from_element(consumer_el)
        .map_err(|e| faults::bad_request(&format!("bad ConsumerReference: {e}")))?;
    let expr_el = ctx
        .body
        .find(ns::WSNT, "TopicExpression")
        .ok_or_else(|| faults::bad_request("Subscribe requires TopicExpression"))?;
    let dialect = expr_el
        .attr_value("Dialect")
        .and_then(Dialect::from_uri)
        .ok_or_else(|| faults::bad_request("unknown topic expression dialect"))?;
    let expr = TopicExpression::parse(dialect, &expr_el.text_content());

    let mut doc = PropertyDoc::new();
    doc.update(
        p_consumer(),
        vec![consumer.to_element_named(ns::WSNT, "ConsumerReference")],
    );
    doc.update(
        p_expression(),
        vec![Element::with_name(p_expression())
            .attr("Dialect", dialect.uri())
            .text(expr.text())],
    );
    doc.set_text(p_paused(), "false");
    let sub_epr = ctx.core.create_resource(doc)?;

    // Optional lease. `InitialTerminationTime` is a *duration in
    // seconds from now* (WS-BaseNotification's relative form): a
    // subscription created at t=100 with a 30-second lease dies at
    // t=130, not instantly at the long-gone absolute t=30.
    if let Some(itt) = ctx.body.find(ns::WSNT, "InitialTerminationTime") {
        let text = itt.text_content();
        if !text.trim().is_empty() {
            let secs: f64 = text
                .trim()
                .parse()
                .map_err(|_| faults::bad_request("InitialTerminationTime must be seconds"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(faults::bad_request(
                    "InitialTerminationTime must be a non-negative number of seconds",
                ));
            }
            let key = sub_epr
                .resource_key()
                .ok_or_else(|| faults::bad_request("subscription EPR carries no resource key"))?
                .to_string();
            let at = SimTime::from_secs_f64(ctx.core.clock.now().as_secs_f64() + secs);
            ctx.core.set_termination_time(&key, Some(at));
        }
    }

    Ok(Element::new(ns::WSNT, "SubscribeResponse")
        .child(sub_epr.to_element_named(ns::WSNT, "SubscriptionReference")))
}

fn set_paused_op(ctx: &mut Ctx<'_>, paused: bool) -> Result<Element, BaseFault> {
    let doc = ctx.resource_mut()?;
    doc.set_text(p_paused(), if paused { "true" } else { "false" });
    let local = if paused {
        "PauseSubscriptionResponse"
    } else {
        "ResumeSubscriptionResponse"
    };
    Ok(Element::new(ns::WSNT, local))
}

fn notify_op(ctx: &mut Ctx<'_>, state: &Arc<BrokerState>) -> Result<Element, BaseFault> {
    // Decode the incoming notification(s).
    let messages: Vec<Arc<NotificationMessage>> = ctx
        .body
        .find_all(ns::WSNT, "NotificationMessage")
        .filter_map(NotificationMessage::from_element)
        .map(Arc::new)
        .collect();
    if messages.is_empty() {
        return Err(faults::bad_request("Notify carried no NotificationMessage"));
    }
    {
        let mut cur = state.current.lock();
        for m in &messages {
            cur.insert(m.topic.to_string(), (**m).clone());
        }
        state.cache_size.set(cur.len() as i64);
    }

    // Fan out to matching subscriptions, propagating the publisher's
    // trace context so deliveries stay in the submission's span tree.
    let trace = ctx.trace;
    let core = ctx.core.clone();
    let fanout_span = core.metrics.timer("broker.fanout").start(&core.clock);
    state.publishes.add(messages.len() as u64);
    for m in &messages {
        state.topic_publishes.counter(m.topic.root()).inc();
    }

    let mut delivered = 0usize;
    let mut failed = 0usize;
    let mut coalesced = 0usize;
    // Per-message set of consumer addresses already served: a consumer
    // holding several overlapping subscriptions hears each message
    // once (its earliest subscription wins).
    let mut seen: Vec<HashSet<String>> = vec![HashSet::new(); messages.len()];

    match &state.index {
        Some(index) => {
            // Union of matching entries across the batch, in
            // subscription order (keys are "<svc>-<n>"): consumers that
            // subscribed earlier hear about an event before consumers
            // whose handling might publish *further* events, which
            // keeps client-visible causality intact on the inline test
            // network.
            let mut matched: Vec<Arc<CompiledSub>> = Vec::new();
            for m in &messages {
                matched.extend(index.matching(&m.topic));
            }
            matched.sort_by(|a, b| (a.key.len(), &a.key).cmp(&(b.key.len(), &b.key)));
            matched.dedup_by(|a, b| a.key == b.key);
            // Manual clocks deliver inline and synchronously — the
            // deterministic test network depends on it. Scaled and
            // realtime clocks hand deliveries to per-consumer queues
            // drained by the worker pool.
            let inline = core.clock.is_manual();
            for sub in &matched {
                for (i, m) in messages.iter().enumerate() {
                    if !sub.expr.matches(&m.topic) || !sub.live() {
                        continue;
                    }
                    if !seen[i].insert(sub.consumer.address.clone()) {
                        coalesced += 1;
                        continue;
                    }
                    state.topic_deliveries.counter(m.topic.root()).inc();
                    if inline {
                        match state.fabric.send_now(sub, m, trace) {
                            SendOutcome::Delivered => delivered += 1,
                            SendOutcome::Failed => failed += 1,
                            SendOutcome::Skipped => {}
                        }
                    } else {
                        state.fabric.enqueue(Delivery {
                            sub: sub.clone(),
                            msg: m.clone(),
                            trace,
                        });
                        delivered += 1;
                    }
                }
            }
        }
        None => {
            // Legacy rescan arm: re-derive the subscriber set from the
            // store on every publish (kept as the E13 baseline).
            let mut keys = core.store.list(&core.name);
            keys.sort_by_key(|k| (k.len(), k.clone()));
            for key in keys {
                let Ok(doc) = core.store.load(&core.name, &key) else {
                    continue;
                };
                let Some(sub) = CompiledSub::compile(&key, &doc) else {
                    continue;
                };
                if !sub.live() {
                    continue;
                }
                for m in &messages {
                    if sub.expr.matches(&m.topic) {
                        state.topic_deliveries.counter(m.topic.root()).inc();
                        let mut env = m.to_envelope(&sub.consumer);
                        if let Some(tc) = &trace {
                            tc.stamp(&mut env);
                        }
                        match core.net.send_oneway(&sub.consumer.address, env) {
                            Ok(()) => delivered += 1,
                            Err(_) => {
                                failed += 1;
                                state.fabric.failures.inc();
                            }
                        }
                    }
                }
            }
        }
    }
    state.deliveries.add(delivered as u64);
    state.coalesced.add(coalesced as u64);
    fanout_span.finish();
    Ok(Element::new(ns::WSNT, "NotifyResponse")
        .attr("delivered", delivered.to_string())
        .attr("failed", failed.to_string())
        .attr("coalesced", coalesced.to_string()))
}

// ---------------------------------------------------------------------
// Client-side helpers
// ---------------------------------------------------------------------

/// Subscribe `consumer` to `expression` at the broker; returns the
/// subscription's EPR. `initial_termination` is a lease duration in
/// seconds *from now* (see [`subscribe_op`]'s relative
/// `InitialTerminationTime` semantics).
pub fn subscribe(
    net: &InProcNetwork,
    broker: &EndpointReference,
    consumer: &EndpointReference,
    expression: &TopicExpression,
    initial_termination: Option<f64>,
) -> Result<EndpointReference, SoapFault> {
    let mut body = Element::new(ns::WSNT, "Subscribe")
        .child(consumer.to_element_named(ns::WSNT, "ConsumerReference"))
        .child(
            Element::new(ns::WSNT, "TopicExpression")
                .attr("Dialect", expression.dialect.uri())
                .text(expression.text()),
        );
    if let Some(secs) = initial_termination {
        body.push_child(Element::new(ns::WSNT, "InitialTerminationTime").text(format!("{secs}")));
    }
    let mut env = Envelope::new(body);
    MessageInfo::request(broker.clone(), subscribe_action()).apply(&mut env);
    let resp = net
        .call(&broker.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    let sref = resp
        .body
        .find(ns::WSNT, "SubscriptionReference")
        .ok_or_else(|| SoapFault::server("SubscribeResponse missing SubscriptionReference"))?;
    EndpointReference::from_element(sref).map_err(|e| SoapFault::server(e.to_string()))
}

/// Publish a notification *through* the broker (one-way).
pub fn publish(
    net: &InProcNetwork,
    broker: &EndpointReference,
    msg: &NotificationMessage,
) -> Result<(), TransportError> {
    net.send_oneway(&broker.address, msg.to_envelope(broker))
}

/// Publish via request/response, returning the broker's
/// `NotifyResponse` (with its `delivered`/`failed`/`coalesced`
/// attributes) instead of fire-and-forget.
pub fn publish_counted(
    net: &InProcNetwork,
    broker: &EndpointReference,
    msg: &NotificationMessage,
) -> Result<Envelope, SoapFault> {
    let mut env = msg.to_envelope(broker);
    MessageInfo::request(broker.clone(), notify_action()).apply(&mut env);
    net.call(&broker.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))
}

/// Pause or resume a subscription by its EPR.
pub fn set_subscription_paused(
    net: &InProcNetwork,
    subscription: &EndpointReference,
    paused: bool,
) -> Result<(), SoapFault> {
    let op = if paused {
        "PauseSubscription"
    } else {
        "ResumeSubscription"
    };
    let mut env = Envelope::new(Element::new(ns::WSNT, op));
    MessageInfo::request(subscription.clone(), format!("{}/{op}", ns::WSNT)).apply(&mut env);
    let resp = net
        .call(&subscription.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    match resp.fault() {
        Some(f) => Err(f),
        None => Ok(()),
    }
}

/// Fetch the last message published on a concrete topic
/// (WS-BaseNotification `GetCurrentMessage`).
pub fn get_current_message(
    net: &InProcNetwork,
    broker: &EndpointReference,
    topic: &str,
) -> Result<Option<NotificationMessage>, SoapFault> {
    let body = Element::new(ns::WSNT, "GetCurrentMessage")
        .child(Element::new(ns::WSNT, "Topic").text(topic));
    let mut env = Envelope::new(body);
    MessageInfo::request(broker.clone(), format!("{}/GetCurrentMessage", ns::WSNT)).apply(&mut env);
    let resp = net
        .call(&broker.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        if f.error_code() == Some("wsnt:NoCurrentMessageOnTopic") {
            return Ok(None);
        }
        return Err(f);
    }
    Ok(resp
        .body
        .find(ns::WSNT, "NotificationMessage")
        .and_then(NotificationMessage::from_element))
}

/// The action URI helper shared with `wsrf-core` services (re-export
/// for symmetry with service-defined operations).
pub fn broker_action(service: &str, op: &str) -> String {
    action_uri(service, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::NotificationListener;
    use wsrf_core::store::MemoryStore;

    struct Fixture {
        net: Arc<InProcNetwork>,
        clock: Clock,
        broker_epr: EndpointReference,
        #[allow(dead_code)]
        broker: Arc<Service>,
    }

    fn fixture() -> Fixture {
        fixture_with(BrokerConfig::default())
    }

    fn fixture_with(config: BrokerConfig) -> Fixture {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let broker = notification_broker_with(
            "Broker",
            "inproc://hub/Broker",
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
            config,
        );
        broker.register(&net);
        let broker_epr = broker.core().service_epr();
        Fixture {
            net,
            clock,
            broker_epr,
            broker,
        }
    }

    fn msg(topic: &str) -> NotificationMessage {
        NotificationMessage::new(topic, Element::new(ns::UVACG, "Evt").text(topic))
            .from_producer(EndpointReference::service("inproc://m1/Exec"))
    }

    #[test]
    fn broker_multicasts_to_matching_subscribers() {
        let f = fixture();
        let sched = NotificationListener::register(&f.net, "inproc://hub/sched-listener");
        let client = NotificationListener::register(&f.net, "inproc://client/listener");
        let other = NotificationListener::register(&f.net, "inproc://other/listener");
        subscribe(
            &f.net,
            &f.broker_epr,
            &sched.epr(),
            &TopicExpression::full("js-1//"),
            None,
        )
        .unwrap();
        subscribe(
            &f.net,
            &f.broker_epr,
            &client.epr(),
            &TopicExpression::full("js-1//"),
            None,
        )
        .unwrap();
        subscribe(
            &f.net,
            &f.broker_epr,
            &other.epr(),
            &TopicExpression::full("js-2//"),
            None,
        )
        .unwrap();

        publish(&f.net, &f.broker_epr, &msg("js-1/job/exit")).unwrap();
        assert_eq!(sched.count(), 1);
        assert_eq!(client.count(), 1);
        assert_eq!(other.count(), 0);
        // Producer reference survives brokering.
        assert_eq!(
            sched.received()[0].producer.as_ref().unwrap().address,
            "inproc://m1/Exec"
        );
    }

    #[test]
    fn rescan_arm_multicasts_identically() {
        let f = fixture_with(BrokerConfig::rescan());
        let a = NotificationListener::register(&f.net, "inproc://a/l");
        let b = NotificationListener::register(&f.net, "inproc://b/l");
        subscribe(
            &f.net,
            &f.broker_epr,
            &a.epr(),
            &TopicExpression::full("js-1//"),
            None,
        )
        .unwrap();
        subscribe(
            &f.net,
            &f.broker_epr,
            &b.epr(),
            &TopicExpression::full("js-2//"),
            None,
        )
        .unwrap();
        publish(&f.net, &f.broker_epr, &msg("js-1/job/exit")).unwrap();
        assert_eq!(a.count(), 1);
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn pause_and_resume() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let sub = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            None,
        )
        .unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1);

        set_subscription_paused(&f.net, &sub, true).unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1, "paused");

        set_subscription_paused(&f.net, &sub, false).unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 2, "resumed");
    }

    #[test]
    fn subscription_is_a_queryable_resource() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let sub = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::full("a/*/c"),
            None,
        )
        .unwrap();
        // Read its TopicExpression through the standard port type.
        let mut env =
            Envelope::new(Element::new(ns::WSRP, "GetResourceProperty").text("TopicExpression"));
        MessageInfo::request(
            sub,
            wsrf_core::porttypes::wsrp_action("GetResourceProperty"),
        )
        .apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(resp.body.text_content(), "a/*/c");
    }

    #[test]
    fn subscription_lease_expires() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            Some(30.0),
        )
        .unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1);
        f.clock.advance(std::time::Duration::from_secs(31));
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1, "expired subscription no longer delivers");
    }

    #[test]
    fn initial_termination_time_is_relative_to_now() {
        let f = fixture();
        // Let virtual time run well past the lease duration first: a
        // 30-second lease taken at t=100 must expire at t=130, not be
        // treated as the long-past absolute time t=30.
        f.clock.advance(std::time::Duration::from_secs(100));
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            Some(30.0),
        )
        .unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 1, "lease still live right after subscribing");
        f.clock.advance(std::time::Duration::from_secs(29));
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 2, "lease still live at t+29s");
        f.clock.advance(std::time::Duration::from_secs(2));
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 2, "lease expired at t+31s");
    }

    #[test]
    fn destroy_subscription_stops_delivery() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let sub = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            None,
        )
        .unwrap();
        let mut env = Envelope::new(Element::new(ns::WSRL, "Destroy"));
        MessageInfo::request(sub, wsrf_core::porttypes::wsrl_action("Destroy")).apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert!(!resp.is_fault());
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l.count(), 0);
        // The broker reports zero matches too: index and store agree.
        let resp = publish_counted(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(resp.body.attr_value("delivered"), Some("0"));
    }

    #[test]
    fn overlapping_subscriptions_coalesce_to_one_delivery() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::full("a//"),
            None,
        )
        .unwrap();
        subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::full("a/b//"),
            None,
        )
        .unwrap();
        let resp = publish_counted(&f.net, &f.broker_epr, &msg("a/b/c")).unwrap();
        assert_eq!(l.count(), 1, "one consumer, one copy");
        assert_eq!(resp.body.attr_value("delivered"), Some("1"));
        assert_eq!(resp.body.attr_value("coalesced"), Some("1"));
        // A topic matching only one of the expressions is unaffected.
        publish(&f.net, &f.broker_epr, &msg("a/x")).unwrap();
        assert_eq!(l.count(), 2);
    }

    #[test]
    fn failed_deliveries_are_counted_and_autopause_the_subscription() {
        let f = fixture_with(BrokerConfig {
            autopause_after: 3,
            ..BrokerConfig::default()
        });
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let sub = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            None,
        )
        .unwrap();
        // The consumer vanishes from the network.
        f.net.unregister("inproc://c/l");
        for _ in 0..2 {
            let resp = publish_counted(&f.net, &f.broker_epr, &msg("t")).unwrap();
            assert_eq!(resp.body.attr_value("delivered"), Some("0"));
            assert_eq!(resp.body.attr_value("failed"), Some("1"));
        }
        // Third consecutive failure trips the auto-pause.
        let resp = publish_counted(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(resp.body.attr_value("failed"), Some("1"));
        let mut env = Envelope::new(Element::new(ns::WSRP, "GetResourceProperty").text("Paused"));
        MessageInfo::request(
            sub.clone(),
            wsrf_core::porttypes::wsrp_action("GetResourceProperty"),
        )
        .apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(resp.body.text_content(), "true", "auto-paused RP visible");
        // Re-registering alone does not resume the paused subscription…
        let l2 = NotificationListener::register(&f.net, "inproc://c/l");
        let resp = publish_counted(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(resp.body.attr_value("delivered"), Some("0"));
        assert_eq!(l2.count(), 0);
        // …an explicit Resume does.
        set_subscription_paused(&f.net, &sub, false).unwrap();
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        assert_eq!(l2.count(), 1);
    }

    #[test]
    fn a_successful_delivery_resets_the_failure_streak() {
        let f = fixture_with(BrokerConfig {
            autopause_after: 2,
            ..BrokerConfig::default()
        });
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let sub = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            None,
        )
        .unwrap();
        // fail, succeed, fail, succeed… never two in a row.
        for _ in 0..3 {
            f.net.unregister("inproc://c/l");
            publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
            NotificationListener::register(&f.net, "inproc://c/l");
            publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        }
        let mut env = Envelope::new(Element::new(ns::WSRP, "GetResourceProperty").text("Paused"));
        MessageInfo::request(
            sub,
            wsrf_core::porttypes::wsrp_action("GetResourceProperty"),
        )
        .apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(resp.body.text_content(), "false", "streak never reached 2");
    }

    #[test]
    fn get_current_message_returns_latest_per_topic() {
        let f = fixture();
        assert_eq!(
            get_current_message(&f.net, &f.broker_epr, "t").unwrap(),
            None
        );
        publish(&f.net, &f.broker_epr, &msg("t")).unwrap();
        publish(&f.net, &f.broker_epr, &msg("other")).unwrap();
        let m2 = NotificationMessage::new("t", Element::new(ns::UVACG, "Evt").text("second"));
        publish(&f.net, &f.broker_epr, &m2).unwrap();
        let got = get_current_message(&f.net, &f.broker_epr, "t")
            .unwrap()
            .unwrap();
        assert_eq!(got.payload.text_content(), "second");
        let other = get_current_message(&f.net, &f.broker_epr, "other")
            .unwrap()
            .unwrap();
        assert_eq!(other.topic.to_string(), "other");
    }

    #[test]
    fn current_message_cache_is_bounded() {
        let f = fixture_with(BrokerConfig {
            current_cache_cap: 8,
            ..BrokerConfig::default()
        });
        for i in 0..40 {
            publish(&f.net, &f.broker_epr, &msg(&format!("t{i}"))).unwrap();
        }
        // The earliest topics aged out of the bounded cache…
        assert_eq!(
            get_current_message(&f.net, &f.broker_epr, "t0").unwrap(),
            None
        );
        // …the most recent survive.
        assert!(get_current_message(&f.net, &f.broker_epr, "t39")
            .unwrap()
            .is_some());
    }

    #[test]
    fn current_cache_two_generation_bound_holds() {
        let mut c = CurrentCache::new(8);
        for i in 0..1000 {
            c.insert(format!("t{i}"), msg("x"));
            assert!(
                c.len() <= 8,
                "cache exceeded cap at insert {i}: {}",
                c.len()
            );
        }
        assert!(c.get("t999").is_some());
        assert!(c.get("t0").is_none());
    }

    #[test]
    fn current_cache_gauge_stays_exact_across_generation_swaps() {
        // The `broker.current_cache.size` gauge is set on every Notify;
        // a shadow CurrentCache replays the same insert sequence so the
        // gauge can be checked against the true hot+cold length even as
        // eviction swaps generations.
        let clock = Clock::manual();
        let registry = wsrf_obs::MetricsRegistry::enabled();
        let net = InProcNetwork::with_metrics(
            clock.clone(),
            wsrf_transport::NetConfig::default(),
            &registry,
        );
        let broker = notification_broker_with(
            "Broker",
            "inproc://hub/Broker",
            Arc::new(MemoryStore::new()),
            clock,
            net.clone(),
            BrokerConfig {
                current_cache_cap: 8,
                ..BrokerConfig::default()
            },
        );
        broker.register(&net);
        let bepr = broker.core().service_epr();
        let gauge = registry.gauge("broker.current_cache.size");

        let mut shadow = CurrentCache::new(8);
        for i in 0..40 {
            // Cycle through 13 topics so inserts mix fresh topics (which
            // evict) with re-publishes of resident ones (which must not
            // grow the cache).
            let topic = format!("t{}", i % 13);
            publish(&net, &bepr, &msg(&topic)).unwrap();
            shadow.insert(topic, msg("x"));
            assert_eq!(
                gauge.get(),
                shadow.len() as i64,
                "gauge diverged from cache length at insert {i}"
            );
            assert!(gauge.get() <= 8, "gauge exceeded cap at insert {i}");
        }

        // GetCurrentMessage promotes cold entries back to the hot
        // generation but never changes the cache size.
        let before = gauge.get();
        assert!(get_current_message(&net, &bepr, "t0").unwrap().is_some());
        assert_eq!(gauge.get(), before, "read path must not move the gauge");
    }

    #[test]
    fn index_tracks_subscribe_pause_destroy_and_expiry() {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let registry = wsrf_obs::MetricsRegistry::disabled();
        let index = Arc::new(SubscriptionIndex::new(registry.gauge("x")));
        let store: Arc<dyn ResourceStore> = Arc::new(IndexingStore {
            inner: Arc::new(MemoryStore::new()),
            service: "Broker".into(),
            index: index.clone(),
        });
        let broker = {
            // Build on the *pre-wrapped* store so this test can watch
            // the index directly.
            let b = notification_broker_with(
                "Broker",
                "inproc://hub/Broker",
                store.clone(),
                clock.clone(),
                net.clone(),
                BrokerConfig::default(),
            );
            b.register(&net);
            b
        };
        let bepr = broker.core().service_epr();
        let l = NotificationListener::register(&net, "inproc://c/l");
        let sub = subscribe(&net, &bepr, &l.epr(), &TopicExpression::simple("t"), None).unwrap();
        assert_eq!(index.len(), 1, "subscribe populated the outer index");
        let mut env = Envelope::new(Element::new(ns::WSRL, "Destroy"));
        MessageInfo::request(sub, wsrf_core::porttypes::wsrl_action("Destroy")).apply(&mut env);
        net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(index.len(), 0, "destroy evicted the outer index");
        // Lease expiry evicts too.
        subscribe(
            &net,
            &bepr,
            &l.epr(),
            &TopicExpression::simple("t"),
            Some(5.0),
        )
        .unwrap();
        assert_eq!(index.len(), 1);
        clock.advance(std::time::Duration::from_secs(6));
        assert_eq!(index.len(), 0, "lease expiry evicted the outer index");
    }

    #[test]
    fn get_current_message_requires_topic() {
        let f = fixture();
        let mut env = Envelope::new(Element::new(ns::WSNT, "GetCurrentMessage"));
        MessageInfo::request(
            f.broker_epr.clone(),
            format!("{}/GetCurrentMessage", ns::WSNT),
        )
        .apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(resp.fault().unwrap().error_code(), Some("wsrf:BadRequest"));
    }

    #[test]
    fn subscribe_without_consumer_faults() {
        let f = fixture();
        let mut env = Envelope::new(Element::new(ns::WSNT, "Subscribe"));
        MessageInfo::request(f.broker_epr.clone(), subscribe_action()).apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert_eq!(resp.fault().unwrap().error_code(), Some("wsrf:BadRequest"));
    }

    #[test]
    fn negative_initial_termination_time_faults() {
        let f = fixture();
        let l = NotificationListener::register(&f.net, "inproc://c/l");
        let err = subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::simple("t"),
            Some(-5.0),
        )
        .unwrap_err();
        assert_eq!(err.error_code(), Some("wsrf:BadRequest"));
    }

    #[test]
    fn notify_with_no_messages_faults() {
        let f = fixture();
        let mut env = Envelope::new(Element::new(ns::WSNT, "Notify"));
        MessageInfo::request(f.broker_epr.clone(), notify_action()).apply(&mut env);
        let resp = f.net.call("inproc://hub/Broker", env).unwrap();
        assert!(resp.is_fault());
    }
}
