//! Direct (non-brokered) notification production: an embeddable
//! subscription manager plus the send path.
//!
//! This is the "custom mechanisms for asynchronous messaging are
//! permitted by WSRF.NET (and WSRF)" path: a producer that manages its
//! own subscriber list. The testbed uses it for point-to-point
//! notifications (ProcSpawn → Execution Service, upload completions),
//! and experiment E4 compares it against the brokered path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use wsrf_soap::EndpointReference;
use wsrf_transport::{InProcNetwork, TransportError};
use wsrf_xml::Element;

use crate::message::NotificationMessage;
use crate::topics::{TopicExpression, TopicPath};

/// A registered subscription.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// Stable id (also used as the subscription resource key in the
    /// brokered flavour).
    pub id: u64,
    /// Where notifications are delivered.
    pub consumer: EndpointReference,
    /// Which topics this subscription selects.
    pub expression: TopicExpression,
    /// Paused subscriptions match but do not deliver
    /// (WS-BaseNotification PauseSubscription).
    pub paused: bool,
}

/// Thread-safe subscriber registry with topic matching.
#[derive(Default)]
pub struct SubscriptionManager {
    subs: RwLock<Vec<Subscription>>,
    next_id: AtomicU64,
}

impl SubscriptionManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a subscription; returns its id.
    pub fn subscribe(&self, consumer: EndpointReference, expression: TopicExpression) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subs.write().push(Subscription {
            id,
            consumer,
            expression,
            paused: false,
        });
        id
    }

    /// Remove a subscription; true if it existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut subs = self.subs.write();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        before != subs.len()
    }

    /// Pause or resume; true if the subscription exists.
    pub fn set_paused(&self, id: u64, paused: bool) -> bool {
        let mut subs = self.subs.write();
        match subs.iter_mut().find(|s| s.id == id) {
            Some(s) => {
                s.paused = paused;
                true
            }
            None => false,
        }
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.subs.read().len()
    }

    /// True when no subscriptions exist.
    pub fn is_empty(&self) -> bool {
        self.subs.read().is_empty()
    }

    /// Consumers whose (unpaused) subscriptions match `topic`.
    pub fn matching(&self, topic: &TopicPath) -> Vec<EndpointReference> {
        self.subs
            .read()
            .iter()
            .filter(|s| !s.paused && s.expression.matches(topic))
            .map(|s| s.consumer.clone())
            .collect()
    }
}

/// A notification producer: subscription manager + network send path.
pub struct NotificationProducer {
    /// The producer's own EPR, stamped into outgoing messages.
    pub epr: EndpointReference,
    /// Its subscribers.
    pub subscriptions: SubscriptionManager,
    net: Arc<InProcNetwork>,
}

impl NotificationProducer {
    /// A producer identified by `epr`, sending through `net`.
    pub fn new(epr: EndpointReference, net: Arc<InProcNetwork>) -> Self {
        NotificationProducer {
            epr,
            subscriptions: SubscriptionManager::new(),
            net,
        }
    }

    /// Publish `payload` on `topic`: one one-way `Notify` envelope per
    /// matching subscriber. Returns the number of deliveries attempted;
    /// unroutable consumers are skipped (their error is returned so the
    /// caller may prune them).
    pub fn notify(
        &self,
        topic: impl Into<TopicPath>,
        payload: Element,
    ) -> (usize, Vec<TransportError>) {
        let topic = topic.into();
        let msg = NotificationMessage::new(topic.clone(), payload).from_producer(self.epr.clone());
        let mut sent = 0;
        let mut errors = Vec::new();
        for consumer in self.subscriptions.matching(&topic) {
            match self
                .net
                .send_oneway(&consumer.address, msg.to_envelope(&consumer))
            {
                Ok(()) => sent += 1,
                Err(e) => errors.push(e),
            }
        }
        (sent, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::NotificationListener;
    use simclock::Clock;
    use wsrf_soap::ns;

    fn setup() -> (Arc<InProcNetwork>, NotificationProducer) {
        let net = InProcNetwork::new(Clock::manual());
        let producer =
            NotificationProducer::new(EndpointReference::service("inproc://m1/Exec"), net.clone());
        (net, producer)
    }

    #[test]
    fn subscribe_match_unsubscribe() {
        let m = SubscriptionManager::new();
        let a = m.subscribe(
            EndpointReference::service("inproc://a"),
            TopicExpression::full("js//"),
        );
        let _b = m.subscribe(
            EndpointReference::service("inproc://b"),
            TopicExpression::concrete("js/exit"),
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.matching(&"js/exit".into()).len(), 2);
        assert_eq!(m.matching(&"js/start".into()).len(), 1);
        assert_eq!(m.matching(&"other".into()).len(), 0);
        assert!(m.unsubscribe(a));
        assert!(!m.unsubscribe(a));
        assert_eq!(m.matching(&"js/start".into()).len(), 0);
    }

    #[test]
    fn paused_subscriptions_do_not_match() {
        let m = SubscriptionManager::new();
        let id = m.subscribe(
            EndpointReference::service("inproc://a"),
            TopicExpression::simple("t"),
        );
        assert_eq!(m.matching(&"t".into()).len(), 1);
        assert!(m.set_paused(id, true));
        assert_eq!(m.matching(&"t".into()).len(), 0);
        assert!(m.set_paused(id, false));
        assert_eq!(m.matching(&"t".into()).len(), 1);
        assert!(!m.set_paused(999, true));
    }

    #[test]
    fn notify_delivers_to_matching_listeners() {
        let (net, producer) = setup();
        let listener = NotificationListener::register(&net, "inproc://client/listener");
        producer
            .subscriptions
            .subscribe(listener.epr(), TopicExpression::full("jobset-1//"));
        let (sent, errs) = producer.notify(
            "jobset-1/job/exit",
            Element::new(ns::UVACG, "ExitCode").text("0"),
        );
        assert_eq!((sent, errs.len()), (1, 0));
        let got = listener.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].topic.to_string(), "jobset-1/job/exit");
        assert_eq!(got[0].payload.text_content(), "0");
        assert_eq!(
            got[0].producer.as_ref().unwrap().address,
            "inproc://m1/Exec"
        );
    }

    #[test]
    fn notify_skips_non_matching_topics() {
        let (net, producer) = setup();
        let listener = NotificationListener::register(&net, "inproc://client/l2");
        producer
            .subscriptions
            .subscribe(listener.epr(), TopicExpression::concrete("a/b"));
        let (sent, _) = producer.notify("a/c", Element::local("E"));
        assert_eq!(sent, 0);
        assert!(listener.drain().is_empty());
    }

    #[test]
    fn unroutable_consumer_reports_error() {
        let (_net, producer) = setup();
        producer.subscriptions.subscribe(
            EndpointReference::service("inproc://ghost/listener"),
            TopicExpression::simple("t"),
        );
        let (sent, errs) = producer.notify("t", Element::local("E"));
        assert_eq!(sent, 0);
        assert_eq!(errs.len(), 1);
    }
}
