//! WS-Topics: hierarchical topic spaces and expression dialects.
//!
//! Topics name *kinds* of notifications; consumers subscribe with a
//! topic expression and "the topic system acts as a filter allowing
//! notification consumers to simply state ... which messages they are
//! interested in receiving" (§5). The testbed generates "a unique
//! topic name for events related to this job set", with subtopics per
//! event kind (e.g. `jobset-17/job/exit`).

use std::fmt;

/// A concrete topic: a `/`-separated path of names, e.g.
/// `jobset-17/job/exit`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopicPath(pub Vec<String>);

impl TopicPath {
    /// Parse from `a/b/c` form. Empty segments are dropped.
    pub fn parse(s: &str) -> TopicPath {
        TopicPath(
            s.split('/')
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect(),
        )
    }

    /// Root topic name (empty string for the empty path).
    pub fn root(&self) -> &str {
        self.0.first().map(String::as_str).unwrap_or("")
    }

    /// Child topic of this one.
    pub fn child(&self, name: &str) -> TopicPath {
        let mut v = self.0.clone();
        v.push(name.to_string());
        TopicPath(v)
    }

    /// Depth of the path.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for TopicPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join("/"))
    }
}

impl From<&str> for TopicPath {
    fn from(s: &str) -> Self {
        TopicPath::parse(s)
    }
}

/// The three WS-Topics expression dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// Root topic only: expression `jobset-17` matches exactly the
    /// root topic `jobset-17`.
    Simple,
    /// A full concrete path: `jobset-17/job/exit` matches exactly that
    /// topic.
    Concrete,
    /// Concrete path plus wildcards: `*` matches one segment, `//`
    /// matches any number (including zero) of segments.
    Full,
}

impl Dialect {
    /// The dialect URI carried in `<TopicExpression Dialect="...">`.
    pub fn uri(self) -> &'static str {
        match self {
            Dialect::Simple => "http://docs.oasis-open.org/wsn/2004/06/TopicExpression/Simple",
            Dialect::Concrete => "http://docs.oasis-open.org/wsn/2004/06/TopicExpression/Concrete",
            Dialect::Full => "http://docs.oasis-open.org/wsn/2004/06/TopicExpression/Full",
        }
    }

    /// Inverse of [`Self::uri`]; also accepts the short names
    /// `Simple`/`Concrete`/`Full`.
    pub fn from_uri(uri: &str) -> Option<Dialect> {
        match uri {
            _ if uri == Dialect::Simple.uri() || uri == "Simple" => Some(Dialect::Simple),
            _ if uri == Dialect::Concrete.uri() || uri == "Concrete" => Some(Dialect::Concrete),
            _ if uri == Dialect::Full.uri() || uri == "Full" => Some(Dialect::Full),
            _ => None,
        }
    }
}

/// One segment of a full topic expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Seg {
    Name(String),
    /// `*` — exactly one segment.
    Star,
    /// `//` — zero or more segments.
    Descend,
}

/// A parsed topic expression in one of the three dialects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopicExpression {
    /// The dialect this expression was written in.
    pub dialect: Dialect,
    segs: Vec<Seg>,
}

impl TopicExpression {
    /// Simple-dialect expression for a root topic.
    pub fn simple(root: impl Into<String>) -> TopicExpression {
        TopicExpression {
            dialect: Dialect::Simple,
            segs: vec![Seg::Name(root.into())],
        }
    }

    /// Concrete-dialect expression for an exact path.
    pub fn concrete(path: &str) -> TopicExpression {
        TopicExpression {
            dialect: Dialect::Concrete,
            segs: TopicPath::parse(path)
                .0
                .into_iter()
                .map(Seg::Name)
                .collect(),
        }
    }

    /// Full-dialect expression; `*` and `//` are wildcards.
    ///
    /// `a//b` is written with an empty segment: `a`, ``, `b`.
    pub fn full(expr: &str) -> TopicExpression {
        let mut segs = Vec::new();
        for part in expr.split('/') {
            match part {
                "" => {
                    // Collapse consecutive separators into one Descend.
                    if segs.last() != Some(&Seg::Descend) {
                        segs.push(Seg::Descend);
                    }
                }
                "*" => segs.push(Seg::Star),
                name => segs.push(Seg::Name(name.to_string())),
            }
        }
        // A leading Descend from a leading '/' is meaningless for
        // topics; drop it unless it is the whole expression.
        if segs.first() == Some(&Seg::Descend) && segs.len() > 1 && !expr.starts_with("//") {
            segs.remove(0);
        }
        TopicExpression {
            dialect: Dialect::Full,
            segs,
        }
    }

    /// Parse with an explicit dialect (wire form).
    pub fn parse(dialect: Dialect, expr: &str) -> TopicExpression {
        match dialect {
            Dialect::Simple => TopicExpression::simple(TopicPath::parse(expr).root()),
            Dialect::Concrete => TopicExpression::concrete(expr),
            Dialect::Full => TopicExpression::full(expr),
        }
    }

    /// The textual form carried on the wire.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.segs.iter().enumerate() {
            match s {
                Seg::Name(n) => {
                    if i > 0 && !out.ends_with('/') {
                        out.push('/');
                    }
                    out.push_str(n);
                }
                Seg::Star => {
                    if i > 0 && !out.ends_with('/') {
                        out.push('/');
                    }
                    out.push('*');
                }
                Seg::Descend => out.push_str("//"),
            }
        }
        out
    }

    /// The leading concrete segment of this expression, when it has
    /// one: `Some("jobset-17")` for `jobset-17//exit` or `jobset-17`,
    /// `None` when the expression starts with a wildcard (`//exit`,
    /// `*/x`) and so can match topics under any root. The broker's
    /// sharded subscription index buckets expressions by this prefix;
    /// `None` expressions land in the catch-all bucket scanned on
    /// every publish.
    pub fn concrete_root(&self) -> Option<&str> {
        match self.segs.first() {
            Some(Seg::Name(n)) => Some(n),
            _ => None,
        }
    }

    /// Does this expression match a concrete topic path?
    pub fn matches(&self, topic: &TopicPath) -> bool {
        match self.dialect {
            Dialect::Simple => {
                topic.len() == 1
                    && matches!(self.segs.first(), Some(Seg::Name(n)) if n == topic.root())
            }
            Dialect::Concrete | Dialect::Full => Self::match_segs(&self.segs, &topic.0),
        }
    }

    fn match_segs(segs: &[Seg], path: &[String]) -> bool {
        match (segs.first(), path.first()) {
            (None, None) => true,
            (None, Some(_)) => false,
            (Some(Seg::Descend), _) => {
                // Zero or more segments.
                if Self::match_segs(&segs[1..], path) {
                    return true;
                }
                match path.first() {
                    Some(_) => Self::match_segs(segs, &path[1..]),
                    None => false,
                }
            }
            (Some(_), None) => false,
            (Some(Seg::Star), Some(_)) => Self::match_segs(&segs[1..], &path[1..]),
            (Some(Seg::Name(n)), Some(p)) => n == p && Self::match_segs(&segs[1..], &path[1..]),
        }
    }
}

impl fmt::Display for TopicExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.dialect.uri(), self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> TopicPath {
        TopicPath::parse(s)
    }

    #[test]
    fn topic_path_parsing() {
        assert_eq!(t("a/b/c").0, vec!["a", "b", "c"]);
        assert_eq!(
            t("a//b").0,
            vec!["a", "b"],
            "empty segments dropped in paths"
        );
        assert_eq!(t("").len(), 0);
        assert_eq!(t("a/b").child("c"), t("a/b/c"));
        assert_eq!(t("a/b").root(), "a");
        assert_eq!(t("a/b").to_string(), "a/b");
    }

    #[test]
    fn simple_dialect_matches_root_only() {
        let e = TopicExpression::simple("jobset-1");
        assert!(e.matches(&t("jobset-1")));
        assert!(!e.matches(&t("jobset-1/job")));
        assert!(!e.matches(&t("jobset-2")));
    }

    #[test]
    fn concrete_dialect_exact_match() {
        let e = TopicExpression::concrete("jobset-1/job/exit");
        assert!(e.matches(&t("jobset-1/job/exit")));
        assert!(!e.matches(&t("jobset-1/job")));
        assert!(!e.matches(&t("jobset-1/job/exit/extra")));
    }

    #[test]
    fn full_dialect_star() {
        let e = TopicExpression::full("jobset-1/*/exit");
        assert!(e.matches(&t("jobset-1/job/exit")));
        assert!(e.matches(&t("jobset-1/upload/exit")));
        assert!(
            !e.matches(&t("jobset-1/exit")),
            "* requires exactly one segment"
        );
        assert!(!e.matches(&t("jobset-1/a/b/exit")));
    }

    #[test]
    fn full_dialect_descend() {
        let e = TopicExpression::full("jobset-1//exit");
        assert!(e.matches(&t("jobset-1/exit")));
        assert!(e.matches(&t("jobset-1/job/exit")));
        assert!(e.matches(&t("jobset-1/a/b/c/exit")));
        assert!(!e.matches(&t("jobset-2/exit")));
        assert!(!e.matches(&t("jobset-1/exit/more")));
    }

    #[test]
    fn full_dialect_leading_descend_matches_anywhere() {
        let e = TopicExpression::full("//exit");
        assert!(e.matches(&t("exit")));
        assert!(e.matches(&t("a/b/exit")));
        assert!(!e.matches(&t("a/b/start")));
    }

    #[test]
    fn full_dialect_trailing_descend_matches_subtree() {
        let e = TopicExpression::full("jobset-1//");
        assert!(e.matches(&t("jobset-1")));
        assert!(e.matches(&t("jobset-1/job/exit")));
        assert!(!e.matches(&t("jobset-2/x")));
    }

    #[test]
    fn concrete_root_extraction() {
        assert_eq!(TopicExpression::simple("t").concrete_root(), Some("t"));
        assert_eq!(
            TopicExpression::concrete("a/b/c").concrete_root(),
            Some("a")
        );
        assert_eq!(
            TopicExpression::full("js-1//").concrete_root(),
            Some("js-1")
        );
        assert_eq!(TopicExpression::full("a/*/c").concrete_root(), Some("a"));
        assert_eq!(TopicExpression::full("//exit").concrete_root(), None);
        assert_eq!(TopicExpression::full("*/x").concrete_root(), None);
    }

    #[test]
    fn wire_roundtrip() {
        for (d, s) in [
            (Dialect::Simple, "root"),
            (Dialect::Concrete, "a/b/c"),
            (Dialect::Full, "a/*/c"),
            (Dialect::Full, "a//c"),
        ] {
            let e = TopicExpression::parse(d, s);
            let back = TopicExpression::parse(d, &e.text());
            assert_eq!(back, e, "{d:?} {s}");
        }
    }

    #[test]
    fn dialect_uri_roundtrip() {
        for d in [Dialect::Simple, Dialect::Concrete, Dialect::Full] {
            assert_eq!(Dialect::from_uri(d.uri()), Some(d));
        }
        assert_eq!(Dialect::from_uri("Full"), Some(Dialect::Full));
        assert_eq!(Dialect::from_uri("urn:nope"), None);
    }
}
