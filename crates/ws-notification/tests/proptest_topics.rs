//! Property-based tests for WS-Topics expression semantics.

use proptest::prelude::*;
use ws_notification::topics::{Dialect, TopicExpression, TopicPath};

fn seg() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,6}"
}

fn path() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(seg(), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A concrete expression matches exactly its own path.
    #[test]
    fn concrete_matches_itself_only(p in path(), other in path()) {
        let topic = TopicPath(p.clone());
        let expr = TopicExpression::concrete(&topic.to_string());
        prop_assert!(expr.matches(&topic));
        let other_topic = TopicPath(other.clone());
        prop_assert_eq!(expr.matches(&other_topic), p == other);
    }

    /// Simple dialect: root-only semantics.
    #[test]
    fn simple_matches_only_depth_one(p in path()) {
        let expr = TopicExpression::simple(&p[0]);
        let topic = TopicPath(p.clone());
        prop_assert_eq!(expr.matches(&topic), p.len() == 1);
    }

    /// `root//` matches every topic under (and including) root.
    #[test]
    fn subtree_expression_covers_descendants(p in path()) {
        let expr = TopicExpression::full(&format!("{}//", p[0]));
        prop_assert!(expr.matches(&TopicPath(p.clone())));
        // And never matches a different root.
        let mut other = p.clone();
        other[0] = format!("{}x", other[0]);
        prop_assert!(!expr.matches(&TopicPath(other)));
    }

    /// Replacing any one segment with `*` still matches.
    #[test]
    fn star_generalizes_one_segment(p in path(), idx in 0usize..5) {
        let idx = idx % p.len();
        let mut pattern = p.clone();
        pattern[idx] = "*".to_string();
        let expr = TopicExpression::full(&pattern.join("/"));
        prop_assert!(expr.matches(&TopicPath(p)));
    }

    /// Replacing any contiguous run of segments with `//` still
    /// matches.
    #[test]
    fn descend_generalizes_a_run(p in path(), start in 0usize..5, len in 0usize..5) {
        let start = start % p.len();
        let len = len % (p.len() - start + 1);
        let prefix = p[..start].join("/");
        let suffix = p[start + len..].join("/");
        let expr_text = match (prefix.is_empty(), suffix.is_empty()) {
            (true, true) => "//".to_string(),
            (true, false) => format!("//{suffix}"),
            (false, true) => format!("{prefix}//"),
            (false, false) => format!("{prefix}//{suffix}"),
        };
        let expr = TopicExpression::full(&expr_text);
        prop_assert!(expr.matches(&TopicPath(p.clone())), "{expr_text} vs {}", p.join("/"));
    }

    /// Text form roundtrips through parse for every dialect.
    #[test]
    fn text_roundtrip(p in path(), d in 0usize..3) {
        let dialect = [Dialect::Simple, Dialect::Concrete, Dialect::Full][d];
        let expr = TopicExpression::parse(dialect, &p.join("/"));
        let back = TopicExpression::parse(dialect, &expr.text());
        prop_assert_eq!(back, expr);
    }

    /// `child()` extends paths consistently with parsing.
    #[test]
    fn child_matches_parse(p in path(), extra in seg()) {
        let topic = TopicPath(p.clone()).child(&extra);
        let reparsed = TopicPath::parse(&format!("{}/{}", p.join("/"), extra));
        prop_assert_eq!(topic, reparsed);
    }
}
