//! HMAC-SHA-256 (RFC 2104), used to sign toy certificates and to
//! integrity-protect SOAP bodies.

use crate::sha256::{digest, Sha256};

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time-ish comparison of two MACs. (Good practice even in a
/// simulation; also exercised by the tests.)
pub fn verify(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= expected[i] ^ actual[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    /// RFC 4231 test cases 1, 2 and 3.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // RFC 4231 case 6: 131-byte key.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_detects_mismatch() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(verify(&a, &b));
        b[31] ^= 1;
        assert!(!verify(&a, &b));
    }
}
