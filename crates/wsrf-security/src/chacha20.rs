//! ChaCha20 (RFC 8439) stream cipher, used to encrypt the WS-Security
//! UsernameToken to the recipient's certificate key.

/// ChaCha20 quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Produce one 64-byte keystream block for (key, counter, nonce).
pub fn block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865; // "expa"
    state[1] = 0x3320_646e; // "nd 3"
    state[2] = 0x7962_2d32; // "2-by"
    state[3] = 0x6b20_6574; // "te k"
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypt or decrypt (XOR keystream) in place, starting at block
/// counter 1 as RFC 8439's AEAD construction does.
pub fn apply_keystream(key: &[u8; 32], nonce: &[u8; 12], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, 1 + i as u32, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience: encrypt a copy.
pub fn encrypt(key: &[u8; 32], nonce: &[u8; 12], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    apply_keystream(key, nonce, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        assert_eq!(hex(&out[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&out[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    /// RFC 8439 §2.4.2 encryption test vector (first bytes).
    #[test]
    fn rfc8439_encrypt_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, plaintext);
        assert_eq!(hex(&ct[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        assert_eq!(hex(&ct[ct.len() - 10..]), "b40b8eedf2785e42874d");
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let msg: Vec<u8> = (0..1000u16).map(|i| (i % 256) as u8).collect();
        let ct = encrypt(&key, &nonce, &msg);
        assert_ne!(ct, msg);
        let pt = encrypt(&key, &nonce, &ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let ct1 = encrypt(&key, &[0u8; 12], b"same message");
        let ct2 = encrypt(&key, &[1u8; 12], b"same message");
        assert_ne!(ct1, ct2);
    }
}
