//! A **toy** public-key infrastructure standing in for the paper's
//! X.509 certificates.
//!
//! Substitution (documented in DESIGN.md): instead of RSA/X.509, each
//! principal holds a Diffie–Hellman key pair over the multiplicative
//! group modulo the Mersenne prime `2^61 - 1`. A simulated certificate
//! authority binds subject names to public keys with an HMAC
//! "signature". This is utterly breakable — the point is to reproduce
//! the paper's *message flow* (look up recipient cert, encrypt
//! credentials to it, decrypt server-side) with real key-agreement and
//! cipher costs, not to provide security.

use rand::Rng;

use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;

/// The group modulus: the Mersenne prime `2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// Group generator. 3 generates a large subgroup of `Z_p^*`; ample for
/// a simulation.
pub const GENERATOR: u64 = 3;

/// Modular exponentiation `base^exp mod MODULUS` using u128
/// intermediates.
pub fn mod_pow(base: u64, mut exp: u64) -> u64 {
    let m = MODULUS as u128;
    let mut acc: u128 = 1;
    let mut b = (base as u128) % m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    acc as u64
}

/// A DH key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    /// Secret exponent.
    pub private: u64,
    /// `GENERATOR ^ private mod MODULUS`.
    pub public: u64,
}

impl KeyPair {
    /// Generate a fresh key pair from the given RNG.
    pub fn generate(rng: &mut impl Rng) -> Self {
        // Private keys in [2, MODULUS-2].
        let private = rng.gen_range(2..MODULUS - 1);
        KeyPair {
            private,
            public: mod_pow(GENERATOR, private),
        }
    }

    /// Derive the 32-byte shared symmetric key with a peer's public
    /// value: `SHA256("uvacg-dh" || g^(ab) || context)`.
    pub fn shared_key(&self, peer_public: u64, context: &[u8]) -> [u8; 32] {
        let shared = mod_pow(peer_public, self.private);
        let mut h = Sha256::new();
        h.update(b"uvacg-dh");
        h.update(&shared.to_be_bytes());
        h.update(context);
        h.finalize()
    }
}

/// A certificate binding a subject name to a DH public key, signed by a
/// [`CertificateAuthority`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The subject (a user, a service, or a machine name).
    pub subject: String,
    /// The subject's public key.
    pub public_key: u64,
    /// Name of the issuing CA.
    pub issuer: String,
    /// HMAC over (subject, public key, issuer) with the CA's secret.
    pub signature: [u8; 32],
}

impl Certificate {
    fn signing_input(subject: &str, public_key: u64, issuer: &str) -> Vec<u8> {
        let mut v = Vec::with_capacity(subject.len() + issuer.len() + 10);
        v.extend_from_slice(subject.as_bytes());
        v.push(0);
        v.extend_from_slice(&public_key.to_be_bytes());
        v.push(0);
        v.extend_from_slice(issuer.as_bytes());
        v
    }
}

/// The simulated campus certificate authority. In the real UVaCG this
/// is the university's PKI; here it lives in-process and its "secret"
/// is random bytes.
pub struct CertificateAuthority {
    /// The CA's name (appears as `issuer` on issued certs).
    pub name: String,
    secret: [u8; 32],
}

impl CertificateAuthority {
    /// A new CA with a random signing secret.
    pub fn new(name: impl Into<String>, rng: &mut impl Rng) -> Self {
        let mut secret = [0u8; 32];
        rng.fill(&mut secret);
        CertificateAuthority {
            name: name.into(),
            secret,
        }
    }

    /// Issue a certificate for `subject` over `public_key`.
    pub fn issue(&self, subject: impl Into<String>, public_key: u64) -> Certificate {
        let subject = subject.into();
        let signature = hmac_sha256(
            &self.secret,
            &Certificate::signing_input(&subject, public_key, &self.name),
        );
        Certificate {
            subject,
            public_key,
            issuer: self.name.clone(),
            signature,
        }
    }

    /// Issue a fresh key pair + certificate in one step.
    pub fn enroll(&self, subject: impl Into<String>, rng: &mut impl Rng) -> (KeyPair, Certificate) {
        let kp = KeyPair::generate(rng);
        let cert = self.issue(subject, kp.public);
        (kp, cert)
    }

    /// Verify a certificate was issued by this CA and is untampered.
    pub fn verify(&self, cert: &Certificate) -> bool {
        if cert.issuer != self.name {
            return false;
        }
        let expected = hmac_sha256(
            &self.secret,
            &Certificate::signing_input(&cert.subject, cert.public_key, &cert.issuer),
        );
        crate::hmac::verify(&expected, &cert.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn mod_pow_basics() {
        assert_eq!(mod_pow(3, 0), 1);
        assert_eq!(mod_pow(3, 1), 3);
        assert_eq!(mod_pow(3, 4), 81);
        // Fermat's little theorem: a^(p-1) = 1 mod p.
        assert_eq!(mod_pow(12345, MODULUS - 1), 1);
    }

    #[test]
    fn dh_agreement() {
        let mut r = rng();
        let a = KeyPair::generate(&mut r);
        let b = KeyPair::generate(&mut r);
        assert_eq!(
            a.shared_key(b.public, b"ctx"),
            b.shared_key(a.public, b"ctx")
        );
        assert_ne!(
            a.shared_key(b.public, b"ctx"),
            a.shared_key(b.public, b"other-ctx"),
            "context separates keys"
        );
    }

    #[test]
    fn third_party_derives_different_key() {
        let mut r = rng();
        let a = KeyPair::generate(&mut r);
        let b = KeyPair::generate(&mut r);
        let eve = KeyPair::generate(&mut r);
        assert_ne!(a.shared_key(b.public, b""), eve.shared_key(b.public, b""));
    }

    #[test]
    fn certificates_verify_and_detect_tampering() {
        let mut r = rng();
        let ca = CertificateAuthority::new("uva-ca", &mut r);
        let (_, cert) = ca.enroll("wasson", &mut r);
        assert!(ca.verify(&cert));

        let mut forged = cert.clone();
        forged.subject = "mallory".into();
        assert!(!ca.verify(&forged));

        let mut wrong_key = cert.clone();
        wrong_key.public_key ^= 1;
        assert!(!ca.verify(&wrong_key));

        let other_ca = CertificateAuthority::new("other-ca", &mut r);
        assert!(!other_ca.verify(&cert), "issuer mismatch");
    }

    #[test]
    fn enroll_produces_matching_pair() {
        let mut r = rng();
        let ca = CertificateAuthority::new("ca", &mut r);
        let (kp, cert) = ca.enroll("svc", &mut r);
        assert_eq!(kp.public, cert.public_key);
        assert_eq!(mod_pow(GENERATOR, kp.private), kp.public);
    }
}
