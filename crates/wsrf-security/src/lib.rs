//! # wsrf-security
//!
//! The security substrate for the remote-execution testbed.
//!
//! In the paper, the request to run a job carries the username/password
//! of the account to execute under, "conveyed using a WS-Security
//! password profile SOAP header, which is then encrypted using the X509
//! certificate of the client". There is no usable X.509/WS-Security
//! stack in the offline Rust ecosystem, so — per the reproduction's
//! substitution rule — this crate implements the cryptographic flow
//! from scratch:
//!
//! * [`sha256`] — FIPS-180 SHA-256 (verified against NIST vectors),
//! * [`hmac`] — HMAC-SHA-256 (verified against RFC 4231 vectors),
//! * [`chacha20`] — the RFC 8439 stream cipher (verified against the
//!   RFC vector),
//! * [`pki`] — **toy** Diffie–Hellman "certificates" over a 61-bit
//!   Mersenne prime, issued and signed (HMAC) by a simulated CA,
//! * [`wsse`] — the WS-Security UsernameToken profile header, encrypted
//!   to a recipient certificate via ephemeral DH + ChaCha20, plus
//!   HMAC-based body integrity tokens.
//!
//! **This crate is NOT cryptographically secure** (61-bit DH is
//! breakable in seconds) and says so loudly: it preserves the *message
//! flow and costs* of the paper's security layer, which is what the
//! reproduction evaluates.

pub mod chacha20;
pub mod hmac;
pub mod pki;
pub mod sha256;
pub mod wsse;

pub use pki::{Certificate, CertificateAuthority, KeyPair};
pub use wsse::{SecurityError, UsernameToken};
