//! The WS-Security UsernameToken profile, as used by the paper:
//! "the request to the ES must contain the username/password of the
//! account in which the job should be executed. This information is
//! conveyed using a WS-Security password profile SOAP header, which is
//! then encrypted using the X509 certificate of the client."
//!
//! Our substitution encrypts the token to the *recipient's*
//! certificate: the sender generates an ephemeral DH key, derives a
//! shared ChaCha20 key with the recipient's certified public key, and
//! ships the ephemeral public value + nonce + ciphertext in a
//! `<wsse:Security>` header. Only the holder of the recipient's
//! private key can recover the credentials.

use rand::Rng;

use wsrf_soap::ns;
use wsrf_xml::{base64, Element};

use crate::chacha20;
use crate::hmac::{hmac_sha256, verify};
use crate::pki::{Certificate, KeyPair};

/// Errors raised while decoding or verifying security headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecurityError {
    /// The `<wsse:Security>` header is missing or malformed.
    MalformedHeader(String),
    /// Decryption produced garbage (wrong key).
    DecryptFailed,
    /// A MAC did not verify.
    BadSignature,
}

impl std::fmt::Display for SecurityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecurityError::MalformedHeader(m) => write!(f, "malformed security header: {m}"),
            SecurityError::DecryptFailed => f.write_str("credential decryption failed"),
            SecurityError::BadSignature => f.write_str("signature verification failed"),
        }
    }
}

impl std::error::Error for SecurityError {}

const KEY_CONTEXT: &[u8] = b"wsse-usernametoken";

/// A username/password credential pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsernameToken {
    /// Account name on the target machine.
    pub username: String,
    /// Account password.
    pub password: String,
}

impl UsernameToken {
    /// New token.
    pub fn new(username: impl Into<String>, password: impl Into<String>) -> Self {
        UsernameToken {
            username: username.into(),
            password: password.into(),
        }
    }

    /// Encrypt this token to `recipient`'s certificate, producing a
    /// `<wsse:Security>` header element.
    pub fn encrypt(&self, recipient: &Certificate, rng: &mut impl Rng) -> Element {
        let ephemeral = KeyPair::generate(rng);
        let key = ephemeral.shared_key(recipient.public_key, KEY_CONTEXT);
        let mut nonce = [0u8; 12];
        rng.fill(&mut nonce);
        // Plaintext layout: len-prefixed username then password, plus a
        // short magic so wrong-key decryption is detectable.
        let mut plain = Vec::new();
        plain.extend_from_slice(b"UTOK");
        plain.extend_from_slice(&(self.username.len() as u32).to_be_bytes());
        plain.extend_from_slice(self.username.as_bytes());
        plain.extend_from_slice(self.password.as_bytes());
        let ct = chacha20::encrypt(&key, &nonce, &plain);
        Element::new(ns::WSSE, "Security").child(
            Element::new(ns::WSSE, "EncryptedUsernameToken")
                .attr("EphemeralKey", ephemeral.public.to_string())
                .attr("Nonce", base64::encode(&nonce))
                .attr("Recipient", &recipient.subject)
                .text(base64::encode(&ct)),
        )
    }

    /// Decrypt a `<wsse:Security>` header with the recipient's private
    /// key pair.
    pub fn decrypt(security: &Element, recipient: &KeyPair) -> Result<Self, SecurityError> {
        let tok = security
            .find(ns::WSSE, "EncryptedUsernameToken")
            .ok_or_else(|| SecurityError::MalformedHeader("no EncryptedUsernameToken".into()))?;
        let eph: u64 = tok
            .attr_value("EphemeralKey")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| SecurityError::MalformedHeader("bad EphemeralKey".into()))?;
        let nonce_bytes = tok
            .attr_value("Nonce")
            .and_then(base64::decode)
            .ok_or_else(|| SecurityError::MalformedHeader("bad Nonce".into()))?;
        let nonce: [u8; 12] = nonce_bytes
            .try_into()
            .map_err(|_| SecurityError::MalformedHeader("nonce size".into()))?;
        let ct = base64::decode(&tok.text_content())
            .ok_or_else(|| SecurityError::MalformedHeader("bad ciphertext".into()))?;
        let key = recipient.shared_key(eph, KEY_CONTEXT);
        let plain = chacha20::encrypt(&key, &nonce, &ct);
        if plain.len() < 8 || &plain[..4] != b"UTOK" {
            return Err(SecurityError::DecryptFailed);
        }
        let ulen = u32::from_be_bytes(plain[4..8].try_into().unwrap()) as usize;
        if plain.len() < 8 + ulen {
            return Err(SecurityError::DecryptFailed);
        }
        let username = String::from_utf8(plain[8..8 + ulen].to_vec())
            .map_err(|_| SecurityError::DecryptFailed)?;
        let password = String::from_utf8(plain[8 + ulen..].to_vec())
            .map_err(|_| SecurityError::DecryptFailed)?;
        Ok(UsernameToken { username, password })
    }
}

/// Compute an integrity header over a serialized SOAP body with a
/// shared symmetric key (e.g. a session key the scheduler and ES
/// derived via DH).
pub fn sign_body(body_xml: &str, key: &[u8; 32]) -> Element {
    let mac = hmac_sha256(key, body_xml.as_bytes());
    Element::new(ns::WSSE, "Signature")
        .attr("Algorithm", "hmac-sha256")
        .text(base64::encode(&mac))
}

/// Verify an integrity header produced by [`sign_body`].
pub fn verify_body(
    signature: &Element,
    body_xml: &str,
    key: &[u8; 32],
) -> Result<(), SecurityError> {
    let mac_bytes = base64::decode(&signature.text_content())
        .ok_or_else(|| SecurityError::MalformedHeader("bad signature encoding".into()))?;
    let mac: [u8; 32] = mac_bytes
        .try_into()
        .map_err(|_| SecurityError::MalformedHeader("mac size".into()))?;
    let expected = hmac_sha256(key, body_xml.as_bytes());
    if verify(&expected, &mac) {
        Ok(())
    } else {
        Err(SecurityError::BadSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::CertificateAuthority;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn token_roundtrips_through_header() {
        let mut r = rng();
        let ca = CertificateAuthority::new("ca", &mut r);
        let (svc_keys, svc_cert) = ca.enroll("execution-service", &mut r);
        let tok = UsernameToken::new("wasson", "s3cret!");
        let header = tok.encrypt(&svc_cert, &mut r);
        // Serialize across the wire like a real header.
        let parsed = wsrf_xml::parse(&header.to_xml()).unwrap();
        let back = UsernameToken::decrypt(&parsed, &svc_keys).unwrap();
        assert_eq!(back, tok);
    }

    #[test]
    fn ciphertext_hides_credentials() {
        let mut r = rng();
        let ca = CertificateAuthority::new("ca", &mut r);
        let (_, cert) = ca.enroll("svc", &mut r);
        let header = UsernameToken::new("alice", "hunter2").encrypt(&cert, &mut r);
        let xml = header.to_xml();
        assert!(!xml.contains("alice"));
        assert!(!xml.contains("hunter2"));
    }

    #[test]
    fn wrong_key_fails_cleanly() {
        let mut r = rng();
        let ca = CertificateAuthority::new("ca", &mut r);
        let (_, cert) = ca.enroll("svc", &mut r);
        let (other_keys, _) = ca.enroll("other", &mut r);
        let header = UsernameToken::new("u", "p").encrypt(&cert, &mut r);
        assert_eq!(
            UsernameToken::decrypt(&header, &other_keys),
            Err(SecurityError::DecryptFailed)
        );
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let empty = Element::new(ns::WSSE, "Security");
        let kp = KeyPair::generate(&mut rng());
        assert!(matches!(
            UsernameToken::decrypt(&empty, &kp),
            Err(SecurityError::MalformedHeader(_))
        ));
    }

    #[test]
    fn empty_password_supported() {
        let mut r = rng();
        let ca = CertificateAuthority::new("ca", &mut r);
        let (keys, cert) = ca.enroll("svc", &mut r);
        let tok = UsernameToken::new("user", "");
        let back = UsernameToken::decrypt(&tok.encrypt(&cert, &mut r), &keys).unwrap();
        assert_eq!(back, tok);
    }

    #[test]
    fn body_signature_verifies_and_detects_tampering() {
        let key = [9u8; 32];
        let body = "<Run job=\"1\"/>";
        let sig = sign_body(body, &key);
        assert!(verify_body(&sig, body, &key).is_ok());
        assert_eq!(
            verify_body(&sig, "<Run job=\"2\"/>", &key),
            Err(SecurityError::BadSignature)
        );
        let wrong_key = [8u8; 32];
        assert_eq!(
            verify_body(&sig, body, &wrong_key),
            Err(SecurityError::BadSignature)
        );
    }
}
