//! Offline stand-in for the `rand` crate.
//!
//! Deterministic xoshiro256** generator behind the `Rng`/`SeedableRng`
//! trait surface this workspace uses: `gen`, `gen_range` over integer
//! and float ranges, `gen_bool`, and `fill` for byte slices. Not
//! cryptographically secure — the workspace's security layer is itself
//! a simulation, so statistical quality and determinism are what
//! matter here.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly by an [`Rng`].
pub trait Standard {
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for u8 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for i32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges an [`Rng`] can sample from uniformly.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(v)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(v)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut impl RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the shim's "standard" generator. Deterministic
    /// for a given seed; seed expansion uses splitmix64 as the xoshiro
    /// authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility — same engine as [`StdRng`].
    pub type SmallRng = StdRng;
}

/// Process-global convenience generator, seeded from the system clock
/// and a counter; fine for non-security uses.
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    rngs::StdRng::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37, Ordering::Relaxed))
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(2u64..100);
            assert!((2..100).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.1f64..2.0);
            assert!((0.1..2.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_whole_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
