//! Distributed tracing for the WSRF testbed.
//!
//! A [`Tracer`] hands out causal spans: every dispatched operation,
//! transport hop and notification fan-out opens a child span under the
//! context carried in the incoming SOAP message, so one job-set
//! submission yields one connected span tree covering every service it
//! touched (the Figure 3 sequence end-to-end).
//!
//! Design follows the metrics registry's rules:
//!
//! 1. **Opt-out is free.** A disabled tracer is an `Option::None`; every
//!    call is a branch and the `ActiveSpan` guards it returns read no
//!    clocks and allocate nothing.
//! 2. **Sampling is decided at the root.** `sample_every = n` records
//!    every n-th trace; unsampled traces still propagate their ids (so
//!    the header format stays stable) but record nothing anywhere.
//! 3. **Finished spans land in a bounded ring.** One short mutex-guarded
//!    push per finished span; when the ring is full the oldest span is
//!    dropped (and counted) rather than blocking or growing.
//!
//! Spans carry both time bases, like [`crate::Timer`]: virtual
//! nanoseconds from [`simclock::Clock`] (what the simulation says
//! happened) and real nanoseconds (what the host spent).

use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use simclock::Clock;

use crate::{Counter, MetricsRegistry};

/// Whether (and how much) a [`Tracer`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    enabled: bool,
    sample_every: u64,
    capacity: usize,
}

impl TraceConfig {
    /// Tracing on, every trace sampled, default ring capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            sample_every: 1,
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Tracing off (the default): spans cost a branch, nothing more.
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            sample_every: 1,
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Record only every n-th root trace (children inherit the root's
    /// decision). `0` is treated as `1`.
    pub fn with_sample_every(mut self, n: u64) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// Bound on retained finished spans.
    pub fn with_capacity(mut self, spans: usize) -> Self {
        self.capacity = spans.max(1);
        self
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// Default bound on the finished-span ring.
pub const DEFAULT_CAPACITY: usize = 4096;

/// The propagated identity of a span: what travels in the SOAP header.
///
/// `trace_id == 0` means "no trace" — the zero context propagates
/// nothing and records nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub trace_id: u64,
    pub span_id: u64,
    pub sampled: bool,
}

impl SpanContext {
    /// The absent context.
    pub fn none() -> Self {
        SpanContext {
            trace_id: 0,
            span_id: 0,
            sampled: false,
        }
    }

    /// Whether this context identifies a real trace.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }
}

/// A completed span with its causal link.
///
/// Names and services are `Arc<str>` so hot callers (the container
/// keeps one interned name per operation) record spans without
/// allocating; annotation keys are `&'static str` for the same reason.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedSpan {
    pub trace_id: u64,
    pub span_id: u64,
    /// Parent span id within the same trace; `0` for roots.
    pub parent_id: u64,
    pub name: Arc<str>,
    /// The service (or transport) that ran the span.
    pub service: Arc<str>,
    pub virt_start_ns: u64,
    pub virt_end_ns: u64,
    pub real_ns: u64,
    pub annotations: Vec<(&'static str, String)>,
}

struct TracerInner {
    sample_every: u64,
    capacity: usize,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    ring: Mutex<VecDeque<FinishedSpan>>,
    traces_started: Counter,
    spans_finished: Counter,
    spans_dropped: Counter,
}

impl TracerInner {
    fn push(&self, span: FinishedSpan) {
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.spans_dropped.inc();
        }
        ring.push_back(span);
        drop(ring);
        self.spans_finished.inc();
    }
}

/// Hands out spans and retains the finished ones. Cloning shares the
/// ring; a disabled tracer is `None` inside and free to call.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The disabled tracer.
    pub fn noop() -> Self {
        Tracer { inner: None }
    }

    /// Build a tracer; its `trace.*` counters register in `metrics`
    /// (no-ops when that registry is disabled).
    pub fn new(config: TraceConfig, metrics: &MetricsRegistry) -> Self {
        if !config.is_enabled() {
            return Tracer::noop();
        }
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sample_every: config.sample_every.max(1),
                capacity: config.capacity.max(1),
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                ring: Mutex::new(VecDeque::new()),
                traces_started: metrics.counter("trace.traces_started"),
                spans_finished: metrics.counter("trace.spans_finished"),
                spans_dropped: metrics.counter("trace.spans_dropped"),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a new trace. Applies the sampling decision; an unsampled
    /// root still gets a trace id (so propagation stays coherent) but
    /// neither it nor any descendant records.
    pub fn start_root(
        &self,
        name: impl Into<Arc<str>>,
        service: impl Into<Arc<str>>,
        clock: &Clock,
    ) -> ActiveSpan {
        let Some(inner) = &self.inner else {
            return ActiveSpan {
                rec: None,
                ctx: SpanContext::none(),
            };
        };
        let trace_id = inner.next_trace.fetch_add(1, Ordering::Relaxed);
        inner.traces_started.inc();
        // The trace id doubles as the sampling tick (ids start at 1,
        // so the very first trace is always sampled).
        if (trace_id - 1) % inner.sample_every != 0 {
            return ActiveSpan {
                rec: None,
                ctx: SpanContext {
                    trace_id,
                    span_id: 0,
                    sampled: false,
                },
            };
        }
        let span_id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        ActiveSpan {
            rec: Some(Recording {
                inner: inner.clone(),
                parent_id: 0,
                name: name.into(),
                service: service.into(),
                clock: clock.clone(),
                virt_start_ns: clock.now().as_nanos(),
                real_start: Instant::now(),
                annotations: Vec::new(),
            }),
            ctx: SpanContext {
                trace_id,
                span_id,
                sampled: true,
            },
        }
    }

    /// Open a child of `parent`. When the tracer is disabled or the
    /// parent is unsampled/absent, the guard is a pass-through: it
    /// records nothing and its context is the parent's, so downstream
    /// propagation keeps working unchanged.
    pub fn start_child(
        &self,
        parent: SpanContext,
        name: impl Into<Arc<str>>,
        service: impl Into<Arc<str>>,
        clock: &Clock,
    ) -> ActiveSpan {
        let Some(inner) = &self.inner else {
            return ActiveSpan {
                rec: None,
                ctx: parent,
            };
        };
        if !parent.sampled || !parent.is_active() {
            return ActiveSpan {
                rec: None,
                ctx: parent,
            };
        }
        let span_id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        ActiveSpan {
            rec: Some(Recording {
                inner: inner.clone(),
                parent_id: parent.span_id,
                name: name.into(),
                service: service.into(),
                clock: clock.clone(),
                virt_start_ns: clock.now().as_nanos(),
                real_start: Instant::now(),
                annotations: Vec::new(),
            }),
            ctx: SpanContext {
                trace_id: parent.trace_id,
                span_id,
                sampled: true,
            },
        }
    }

    /// Record an instantaneous event span at virtual time `virt_ns`
    /// (the scheduler's Figure 3 step marks). Returns the span id, or
    /// `0` when not recorded.
    pub fn point(
        &self,
        parent: SpanContext,
        name: impl Into<Arc<str>>,
        service: impl Into<Arc<str>>,
        virt_ns: u64,
        annotations: &[(&'static str, &str)],
    ) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        if !parent.sampled || !parent.is_active() {
            return 0;
        }
        let span_id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        inner.push(FinishedSpan {
            trace_id: parent.trace_id,
            span_id,
            parent_id: parent.span_id,
            name: name.into(),
            service: service.into(),
            virt_start_ns: virt_ns,
            virt_end_ns: virt_ns,
            real_ns: 0,
            annotations: annotations
                .iter()
                .map(|&(k, v)| (k, v.to_string()))
                .collect(),
        });
        span_id
    }

    /// All retained finished spans, oldest first.
    pub fn snapshot(&self) -> TraceSnapshot {
        let spans = match &self.inner {
            Some(inner) => inner.ring.lock().iter().cloned().collect(),
            None => Vec::new(),
        };
        TraceSnapshot { spans }
    }

    /// The retained spans of one trace.
    pub fn trace(&self, trace_id: u64) -> TraceSnapshot {
        let spans = match &self.inner {
            Some(inner) => inner
                .ring
                .lock()
                .iter()
                .filter(|s| s.trace_id == trace_id)
                .cloned()
                .collect(),
            None => Vec::new(),
        };
        TraceSnapshot { spans }
    }
}

struct Recording {
    inner: Arc<TracerInner>,
    parent_id: u64,
    name: Arc<str>,
    service: Arc<str>,
    clock: Clock,
    virt_start_ns: u64,
    real_start: Instant,
    annotations: Vec<(&'static str, String)>,
}

/// Guard for an in-flight span; finishes (and records, if sampled) on
/// drop.
pub struct ActiveSpan {
    rec: Option<Recording>,
    ctx: SpanContext,
}

impl ActiveSpan {
    /// The context to stamp onto outgoing messages.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }

    /// Whether this guard will record a span.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// Attach a key=value annotation (no-op when unsampled).
    pub fn annotate(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(rec) = &mut self.rec {
            rec.annotations.push((key, value.into()));
        }
    }

    /// Explicit end (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let virt_end_ns = rec.clock.now().as_nanos();
            let real_ns = rec.real_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            rec.inner.push(FinishedSpan {
                trace_id: self.ctx.trace_id,
                span_id: self.ctx.span_id,
                parent_id: rec.parent_id,
                name: rec.name,
                service: rec.service,
                virt_start_ns: rec.virt_start_ns,
                virt_end_ns,
                real_ns,
                annotations: rec.annotations,
            });
        }
    }
}

/// A point-in-time copy of finished spans, renderable as a text tree
/// or JSON (mirrors [`crate::MetricsSnapshot`]).
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    pub spans: Vec<FinishedSpan>,
}

impl TraceSnapshot {
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Spans whose parent is absent from this snapshot (includes true
    /// roots with `parent_id == 0`).
    pub fn roots(&self) -> Vec<&FinishedSpan> {
        let ids: HashSet<u64> = self.spans.iter().map(|s| s.span_id).collect();
        let mut roots: Vec<&FinishedSpan> = self
            .spans
            .iter()
            .filter(|s| s.parent_id == 0 || !ids.contains(&s.parent_id))
            .collect();
        roots.sort_by_key(|s| (s.trace_id, s.virt_start_ns, s.span_id));
        roots
    }

    /// Direct children of `parent_id`, in virtual-time order.
    pub fn children(&self, parent_id: u64) -> Vec<&FinishedSpan> {
        let mut kids: Vec<&FinishedSpan> = self
            .spans
            .iter()
            .filter(|s| s.parent_id == parent_id && s.span_id != parent_id)
            .collect();
        kids.sort_by_key(|s| (s.virt_start_ns, s.span_id));
        kids
    }

    /// First span with the given name.
    pub fn find(&self, name: &str) -> Option<&FinishedSpan> {
        self.spans.iter().find(|s| &*s.name == name)
    }

    /// Indented text tree, one line per span, children under parents in
    /// virtual-time order. Times are relative to each root's start.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            let _ = writeln!(
                out,
                "trace {:016x} — {} ({} spans)",
                root.trace_id,
                root.name,
                self.spans
                    .iter()
                    .filter(|s| s.trace_id == root.trace_id)
                    .count()
            );
            let mut visited = HashSet::new();
            self.render_span(&mut out, root, root.virt_start_ns, 0, &mut visited);
        }
        out
    }

    fn render_span(
        &self,
        out: &mut String,
        span: &FinishedSpan,
        t0: u64,
        depth: usize,
        visited: &mut HashSet<u64>,
    ) {
        if !visited.insert(span.span_id) {
            return; // defensive: a cyclic parent link must not hang us
        }
        let rel_ms = span.virt_start_ns.saturating_sub(t0) as f64 / 1e6;
        let dur_ms = span.virt_end_ns.saturating_sub(span.virt_start_ns) as f64 / 1e6;
        let mut line = format!(
            "{:indent$}{} [{}] +{rel_ms:.3}ms dur={dur_ms:.3}ms",
            "",
            span.name,
            span.service,
            indent = 2 + depth * 2
        );
        for (k, v) in &span.annotations {
            let _ = write!(line, " {k}={v}");
        }
        let _ = writeln!(out, "{line}");
        for child in self.children(span.span_id) {
            if child.trace_id == span.trace_id {
                self.render_span(out, child, t0, depth + 1, visited);
            }
        }
    }

    /// Minimal JSON encoding (no external deps): an array of span
    /// objects, oldest first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            let comma = if i + 1 == self.spans.len() { "" } else { "," };
            let mut ann = String::new();
            for (j, (k, v)) in s.annotations.iter().enumerate() {
                let c = if j + 1 == s.annotations.len() {
                    ""
                } else {
                    ", "
                };
                let _ = write!(ann, "{k:?}: {v:?}{c}");
            }
            let _ = writeln!(
                out,
                "  {{\"trace_id\": \"{:016x}\", \"span_id\": {}, \"parent_id\": {}, \
                 \"name\": {:?}, \"service\": {:?}, \"virt_start_ns\": {}, \
                 \"virt_end_ns\": {}, \"real_ns\": {}, \"annotations\": {{{ann}}}}}{comma}",
                s.trace_id,
                s.span_id,
                s.parent_id,
                s.name,
                s.service,
                s.virt_start_ns,
                s.virt_end_ns,
                s.real_ns
            );
        }
        out.push(']');
        out
    }

    /// Chrome trace-event format (loadable in `chrome://tracing` or
    /// Perfetto): complete (`"ph": "X"`) events on the virtual
    /// timeline, one `tid` lane per service, with span ids and
    /// annotations under `args`. Timestamps are microseconds with
    /// nanosecond fraction.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        self.write_chrome_into(&mut out);
        out
    }

    /// Sink-generic form of [`TraceSnapshot::to_chrome_json`] — the
    /// exposition endpoint renders straight into its connection buffer.
    pub fn write_chrome_into<S: crate::MetricSink>(&self, sink: &mut S) {
        fn put_us<S: crate::MetricSink>(sink: &mut S, ns: u64) {
            sink.put_u64(ns / 1000);
            let frac = ns % 1000;
            sink.put(".");
            if frac < 100 {
                sink.put("0");
            }
            if frac < 10 {
                sink.put("0");
            }
            sink.put_u64(frac);
        }
        // One tid lane per service, in order of first appearance.
        let mut lanes: Vec<&Arc<str>> = Vec::new();
        for s in &self.spans {
            if !lanes
                .iter()
                .any(|l| Arc::ptr_eq(l, &s.service) || ***l == *s.service)
            {
                lanes.push(&s.service);
            }
        }
        sink.put("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for (tid, service) in lanes.iter().enumerate() {
            sink.put("  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": ");
            sink.put_u64(tid as u64);
            sink.put(", \"args\": {\"name\": \"");
            crate::expose::put_json_escaped(sink, service);
            sink.put("\"}},\n");
        }
        for (i, s) in self.spans.iter().enumerate() {
            let tid = lanes.iter().position(|l| ***l == *s.service).unwrap_or(0);
            sink.put("  {\"ph\": \"X\", \"name\": \"");
            crate::expose::put_json_escaped(sink, &s.name);
            sink.put("\", \"cat\": \"");
            crate::expose::put_json_escaped(sink, &s.service);
            sink.put("\", \"pid\": 1, \"tid\": ");
            sink.put_u64(tid as u64);
            sink.put(", \"ts\": ");
            put_us(sink, s.virt_start_ns);
            sink.put(", \"dur\": ");
            put_us(sink, s.virt_end_ns.saturating_sub(s.virt_start_ns));
            sink.put(", \"args\": {\"span_id\": ");
            sink.put_u64(s.span_id);
            sink.put(", \"parent_id\": ");
            sink.put_u64(s.parent_id);
            sink.put(", \"real_ns\": ");
            sink.put_u64(s.real_ns);
            for (k, v) in &s.annotations {
                sink.put(", \"");
                crate::expose::put_json_escaped(sink, k);
                sink.put("\": \"");
                crate::expose::put_json_escaped(sink, v);
                sink.put("\"");
            }
            sink.put("}}");
            if i + 1 != self.spans.len() {
                sink.put(",");
            }
            sink.put("\n");
        }
        sink.put("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tracer(cfg: TraceConfig) -> (Tracer, Arc<MetricsRegistry>) {
        let reg = MetricsRegistry::enabled();
        (Tracer::new(cfg, &reg), reg)
    }

    #[test]
    fn disabled_tracer_costs_nothing_and_records_nothing() {
        let (t, reg) = tracer(TraceConfig::disabled());
        let clock = Clock::manual();
        let root = t.start_root("r", "svc", &clock);
        assert!(!root.is_recording());
        assert_eq!(root.context(), SpanContext::none());
        let child = t.start_child(root.context(), "c", "svc", &clock);
        assert!(!child.is_recording());
        drop(child);
        drop(root);
        assert!(t.snapshot().is_empty());
        assert_eq!(reg.snapshot().counter("trace.spans_finished"), None);
    }

    #[test]
    fn span_tree_links_and_time_bases() {
        let (t, reg) = tracer(TraceConfig::enabled());
        let clock = Clock::manual();
        clock.advance(Duration::from_secs(10));
        let mut root = t.start_root("submit", "Client", &clock);
        root.annotate("jobset", "demo");
        let rctx = root.context();
        assert!(rctx.sampled);
        {
            let child = t.start_child(rctx, "dispatch", "Scheduler", &clock);
            clock.advance(Duration::from_secs(2));
            let cctx = child.context();
            assert_eq!(cctx.trace_id, rctx.trace_id);
            assert_ne!(cctx.span_id, rctx.span_id);
            let grand = t.start_child(cctx, "stage", "FileSystem", &clock);
            drop(grand);
            drop(child);
        }
        root.finish();

        let snap = t.trace(rctx.trace_id);
        assert_eq!(snap.len(), 3);
        let roots = snap.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(&*roots[0].name, "submit");
        assert_eq!(roots[0].annotations, vec![("jobset", "demo".into())]);
        let dispatch = snap.find("dispatch").unwrap();
        assert_eq!(dispatch.parent_id, roots[0].span_id);
        assert_eq!(dispatch.virt_start_ns, 10_000_000_000);
        assert_eq!(dispatch.virt_end_ns, 12_000_000_000);
        let stage = snap.find("stage").unwrap();
        assert_eq!(stage.parent_id, dispatch.span_id);
        assert_eq!(
            reg.snapshot().counter("trace.spans_finished"),
            Some(3),
            "every sampled span lands"
        );
        let tree = snap.render_tree();
        assert!(tree.contains("submit [Client]"), "{tree}");
        assert!(tree.contains("    dispatch [Scheduler]"), "{tree}");
        assert!(tree.contains("      stage [FileSystem]"), "{tree}");
        let json = snap.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\": \"dispatch\""));
    }

    #[test]
    fn sampling_skips_whole_traces_but_keeps_ids() {
        let (t, _reg) = tracer(TraceConfig::enabled().with_sample_every(2));
        let clock = Clock::manual();
        let a = t.start_root("a", "s", &clock); // tick 0: sampled
        let b = t.start_root("b", "s", &clock); // tick 1: skipped
        assert!(a.is_recording());
        assert!(!b.is_recording());
        assert!(b.context().is_active(), "unsampled trace still has an id");
        let b_child = t.start_child(b.context(), "bc", "s", &clock);
        assert!(!b_child.is_recording(), "children inherit the decision");
        drop(b_child);
        drop(b);
        drop(a);
        let snap = t.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| &*s.name).collect();
        assert_eq!(names, ["a"]);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let (t, reg) = tracer(TraceConfig::enabled().with_capacity(4));
        let clock = Clock::manual();
        for i in 0..10 {
            let mut s = t.start_root(format!("s{i}"), "svc", &clock);
            s.annotate("i", i.to_string());
            drop(s);
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(&*snap.spans[0].name, "s6", "oldest evicted first");
        let m = reg.snapshot();
        assert_eq!(m.counter("trace.spans_finished"), Some(10));
        assert_eq!(m.counter("trace.spans_dropped"), Some(6));
        assert_eq!(m.counter("trace.traces_started"), Some(10));
    }

    #[test]
    fn point_spans_record_instants() {
        let (t, _reg) = tracer(TraceConfig::enabled());
        let clock = Clock::manual();
        let root = t.start_root("r", "svc", &clock);
        let id = t.point(
            root.context(),
            "step.01_submit",
            "Scheduler",
            42,
            &[("job", "*")],
        );
        assert_ne!(id, 0);
        drop(root);
        let snap = t.snapshot();
        let step = snap.find("step.01_submit").unwrap();
        assert_eq!(step.virt_start_ns, 42);
        assert_eq!(step.virt_end_ns, 42);
        assert_eq!(step.annotations, vec![("job", "*".into())]);
        // Unsampled parents record nothing.
        assert_eq!(t.point(SpanContext::none(), "x", "s", 0, &[]), 0);
    }

    #[test]
    fn chrome_export_shapes_and_lanes() {
        let (t, _reg) = tracer(TraceConfig::enabled());
        let clock = Clock::manual();
        let mut root = t.start_root("submit", "Client", &clock);
        root.annotate("jobset", "demo");
        {
            let child = t.start_child(root.context(), "dispatch", "Scheduler", &clock);
            clock.advance(Duration::from_micros(1500));
            drop(child);
        }
        root.finish();
        let json = t.snapshot().to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"traceEvents\""));
        // Two services → two thread_name metadata records, two lanes.
        assert!(json.contains("\"name\": \"Client\""));
        assert!(json.contains("\"name\": \"Scheduler\""));
        assert!(json.contains("\"ph\": \"X\", \"name\": \"dispatch\""));
        // 1500 µs virtual duration renders as microseconds.
        assert!(json.contains("\"dur\": 1500.000"), "{json}");
        assert!(json.contains("\"jobset\": \"demo\""));
        // Sink parity: LenSink sizes the render exactly.
        let mut len = crate::LenSink::default();
        t.snapshot().write_chrome_into(&mut len);
        assert_eq!(len.0, json.len());
    }
}
