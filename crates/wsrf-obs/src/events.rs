//! Structured event log: a bounded, per-severity ring of typed events.
//!
//! Metrics answer "how much"; the event log answers "what happened".
//! Emitters (container dispatch, the WAL, the broker's delivery
//! fabric, the scheduler) push typed [`Event`]s; consumers read them
//! back as a `{UVACG}EventLog` resource property, stream them onto a
//! `monitor/events` notification topic, or scrape them through the
//! exposition endpoint's health view.
//!
//! Rules match the rest of the registry:
//!
//! 1. **Opt-out is free.** A disabled log is `None` inside; `emit`
//!    takes the detail as a closure so callers pay no formatting (and
//!    no allocation) when the log is off.
//! 2. **Bounded per severity.** Each severity keeps its own ring of
//!    `capacity` events, so a storm of `Info` chatter can never evict
//!    the `Error` that explains it. Evictions are counted
//!    (`events.dropped`), never blocking.
//! 3. **Globally ordered.** Every event gets a sequence number from one
//!    atomic; `since(seq)` lets a pump stream the log incrementally
//!    without missing or duplicating events.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Counter, MetricsRegistry};

/// How loud an event is. Ordering is by urgency (`Info < Warn <
/// Error`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

/// All severities, ring order.
pub const SEVERITIES: [Severity; 3] = [Severity::Info, Severity::Warn, Severity::Error];

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    fn idx(&self) -> usize {
        *self as usize
    }
}

/// What kind of thing happened. A closed set: kinds are counted
/// individually (`events.<kind>`), so an open set would be an
/// unbounded-cardinality escape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A container operation returned a fault.
    DispatchFault,
    /// A WAL shard compacted its log into a snapshot.
    WalSnapshot,
    /// The broker auto-paused a subscription after consecutive
    /// delivery failures.
    DeliveryAutopause,
    /// A WS-ResourceLifetime lease expired and the resource was
    /// destroyed.
    LeaseExpiry,
    /// A scheduler job set ran to completion.
    JobCompleted,
    /// A scheduler job (or its machine) failed or timed out.
    JobFailed,
}

/// All kinds, counter order.
pub const EVENT_KINDS: [EventKind; 6] = [
    EventKind::DispatchFault,
    EventKind::WalSnapshot,
    EventKind::DeliveryAutopause,
    EventKind::LeaseExpiry,
    EventKind::JobCompleted,
    EventKind::JobFailed,
];

impl EventKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::DispatchFault => "dispatch_fault",
            EventKind::WalSnapshot => "wal_snapshot",
            EventKind::DeliveryAutopause => "delivery_autopause",
            EventKind::LeaseExpiry => "lease_expiry",
            EventKind::JobCompleted => "job_completed",
            EventKind::JobFailed => "job_failed",
        }
    }

    fn idx(&self) -> usize {
        *self as usize
    }
}

/// One logged occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number, starting at 1; total order across
    /// severities.
    pub seq: u64,
    pub severity: Severity,
    pub kind: EventKind,
    /// The service (or subsystem) that emitted the event.
    pub service: Arc<str>,
    /// Human-readable specifics ("op QueryJob: no such resource").
    pub detail: String,
    /// Virtual time of the event; `0` when the emitter has no clock
    /// (the WAL).
    pub virt_ns: u64,
}

struct EventLogInner {
    capacity: usize,
    next_seq: AtomicU64,
    rings: [Mutex<VecDeque<Event>>; 3],
    emitted: Counter,
    dropped: Counter,
    by_kind: [Counter; EVENT_KINDS.len()],
}

/// Handle onto a deployment's event log. Cloning shares the rings; a
/// disabled log is `None` inside and free to call.
#[derive(Clone, Default)]
pub struct EventLog {
    inner: Option<Arc<EventLogInner>>,
}

impl EventLog {
    /// The disabled log.
    pub fn noop() -> Self {
        EventLog { inner: None }
    }

    /// Build a log retaining up to `capacity` events per severity; its
    /// `events.*` counters register in `metrics`. `capacity == 0`
    /// disables the log entirely.
    pub fn new(capacity: usize, metrics: &MetricsRegistry) -> Self {
        if capacity == 0 {
            return EventLog::noop();
        }
        EventLog {
            inner: Some(Arc::new(EventLogInner {
                capacity,
                next_seq: AtomicU64::new(1),
                rings: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
                emitted: metrics.counter("events.emitted"),
                dropped: metrics.counter("events.dropped"),
                by_kind: std::array::from_fn(|i| {
                    metrics.counter(&format!("events.{}", EVENT_KINDS[i].as_str()))
                }),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Retention bound per severity ring (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map(|i| i.capacity).unwrap_or(0)
    }

    /// Log one event. `detail` is a closure so a disabled log costs a
    /// branch, not a format. Returns the event's sequence number (`0`
    /// when disabled).
    pub fn emit(
        &self,
        severity: Severity,
        kind: EventKind,
        service: &str,
        virt_ns: u64,
        detail: impl FnOnce() -> String,
    ) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let seq = inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            severity,
            kind,
            service: Arc::from(service),
            detail: detail(),
            virt_ns,
        };
        let mut ring = inner.rings[severity.idx()].lock();
        if ring.len() >= inner.capacity {
            ring.pop_front();
            inner.dropped.inc();
        }
        ring.push_back(event);
        drop(ring);
        inner.emitted.inc();
        inner.by_kind[kind.idx()].inc();
        seq
    }

    /// The newest `n` events of one severity, oldest first.
    pub fn recent(&self, severity: Severity, n: usize) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let ring = inner.rings[severity.idx()].lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Retained events of one severity.
    pub fn len(&self, severity: Severity) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.rings[severity.idx()].lock().len())
            .unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        SEVERITIES.iter().all(|s| self.len(*s) == 0)
    }

    /// Every retained event across severities, in sequence order.
    pub fn all(&self) -> Vec<Event> {
        self.since(0)
    }

    /// Retained events with `seq > after`, in sequence order — the
    /// incremental read an event pump uses. Events already evicted
    /// from their ring are gone (bounded retention is the contract);
    /// compare the pump's cursor with [`EventLog::last_seq`] and
    /// `events.dropped` to detect gaps.
    pub fn since(&self, after: u64) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out: Vec<Event> = Vec::new();
        for ring in &inner.rings {
            out.extend(ring.lock().iter().filter(|e| e.seq > after).cloned());
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The most recently assigned sequence number (0 when nothing has
    /// been emitted).
    pub fn last_seq(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.next_seq.load(Ordering::Relaxed) - 1)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(cap: usize) -> (EventLog, Arc<MetricsRegistry>) {
        let reg = MetricsRegistry::enabled();
        (EventLog::new(cap, &reg), reg)
    }

    #[test]
    fn disabled_log_costs_nothing() {
        let noop = EventLog::noop();
        let mut formatted = false;
        let seq = noop.emit(Severity::Error, EventKind::DispatchFault, "svc", 0, || {
            formatted = true;
            "boom".into()
        });
        assert_eq!(seq, 0);
        assert!(!formatted, "detail closure must not run when disabled");
        assert!(noop.all().is_empty());
        assert_eq!(EventLog::new(0, &MetricsRegistry::enabled()).capacity(), 0);
    }

    #[test]
    fn rings_are_bounded_per_severity() {
        let (log, reg) = log(3);
        for i in 0..10 {
            log.emit(Severity::Info, EventKind::WalSnapshot, "wal", i, || {
                format!("snap {i}")
            });
        }
        // Info churn does not evict the lone error.
        log.emit(Severity::Error, EventKind::DispatchFault, "fss", 99, || {
            "fault".into()
        });
        assert_eq!(log.len(Severity::Info), 3);
        assert_eq!(log.len(Severity::Error), 1);
        let info = log.recent(Severity::Info, 10);
        assert_eq!(info.len(), 3);
        assert_eq!(info[0].detail, "snap 7", "oldest evicted first");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("events.emitted"), Some(11));
        assert_eq!(snap.counter("events.dropped"), Some(7));
        assert_eq!(snap.counter("events.wal_snapshot"), Some(10));
        assert_eq!(snap.counter("events.dispatch_fault"), Some(1));
    }

    #[test]
    fn since_merges_severities_in_sequence_order() {
        let (log, _reg) = log(16);
        log.emit(Severity::Info, EventKind::JobCompleted, "sched", 1, || {
            "a".into()
        });
        log.emit(Severity::Warn, EventKind::JobFailed, "sched", 2, || {
            "b".into()
        });
        log.emit(Severity::Info, EventKind::LeaseExpiry, "broker", 3, || {
            "c".into()
        });
        let all = log.all();
        assert_eq!(
            all.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "global order across rings"
        );
        let tail = log.since(all[1].seq);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].detail, "c");
        assert_eq!(log.last_seq(), 3);
        assert!(log.since(log.last_seq()).is_empty());
    }

    #[test]
    fn concurrent_emitters_keep_unique_sequence() {
        let (log, _reg) = log(4096);
        crossbeam::scope(|s| {
            for t in 0..4 {
                let log = &log;
                s.spawn(move |_| {
                    for i in 0..100 {
                        log.emit(Severity::Info, EventKind::WalSnapshot, "wal", i, || {
                            format!("t{t} i{i}")
                        });
                    }
                });
            }
        })
        .unwrap();
        let all = log.all();
        assert_eq!(all.len(), 400);
        let mut seqs: Vec<u64> = all.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "no duplicate sequence numbers");
    }
}
