//! Exposition: render a live [`MetricsRegistry`] as Prometheus-style
//! text or flat JSON, straight into a caller-supplied sink.
//!
//! Mirrors the `XmlSink` pattern from `wsrf-xml`: one render routine is
//! generic over the destination ([`MetricSink`]), so the HTTP scrape
//! path renders into a reused per-connection `Vec<u8>` and a sizing
//! pass can count bytes — in both cases without allocating a single
//! per-metric `String`. Integers are formatted through a stack buffer
//! ([`MetricSink::put_u64`]), metric names are sanitized for Prometheus
//! by streaming the valid runs ([`put_sanitized`]), and the JSON shape
//! is byte-compatible with [`crate::MetricsSnapshot::to_json`] so the
//! bench gate parses scrapes and dumps identically.

use crate::{percentile_from_buckets, Metric, MetricsRegistry};
use std::sync::atomic::Ordering;

/// Destination for rendered metrics. Implemented for `String`,
/// `Vec<u8>` and [`LenSink`] (exact size of a render, no bytes kept).
pub trait MetricSink {
    fn put(&mut self, s: &str);

    /// Append a `u64` without heap allocation (stack `itoa`).
    fn put_u64(&mut self, mut v: u64) {
        let mut buf = [0u8; 20];
        let mut at = buf.len();
        loop {
            at -= 1;
            buf[at] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        // The buffer holds only ASCII digits.
        self.put(std::str::from_utf8(&buf[at..]).unwrap());
    }

    /// Append an `i64` without heap allocation.
    fn put_i64(&mut self, v: i64) {
        if v < 0 {
            self.put("-");
            self.put_u64(v.unsigned_abs());
        } else {
            self.put_u64(v as u64);
        }
    }

    /// Append a non-negative float with one decimal digit (what the
    /// JSON `mean` field uses), without heap allocation.
    fn put_tenths(&mut self, v: f64) {
        let tenths = (v.max(0.0) * 10.0).round() as u64;
        self.put_u64(tenths / 10);
        self.put(".");
        self.put_u64(tenths % 10);
    }
}

impl MetricSink for String {
    fn put(&mut self, s: &str) {
        self.push_str(s);
    }
}

impl MetricSink for Vec<u8> {
    fn put(&mut self, s: &str) {
        self.extend_from_slice(s.as_bytes());
    }
}

/// Counts bytes instead of keeping them: `render` into a `LenSink` is
/// an exact sizing pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct LenSink(pub usize);

impl MetricSink for LenSink {
    fn put(&mut self, s: &str) {
        self.0 += s.len();
    }
}

/// True for characters Prometheus accepts in metric names.
fn prom_ok(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b':'
}

/// Stream `name` with every Prometheus-invalid character (dots, mostly)
/// replaced by `_`, pushing the valid runs as borrowed slices.
fn put_sanitized(sink: &mut impl MetricSink, name: &str) {
    let bytes = name.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if !prom_ok(b) {
            if start < i {
                sink.put(&name[start..i]);
            }
            sink.put("_");
            start = i + 1;
        }
    }
    if start < bytes.len() {
        sink.put(&name[start..]);
    }
}

/// Stream `s` as the interior of a JSON string (quotes not included),
/// escaping the JSON-special characters in place.
pub(crate) fn put_json_escaped(sink: &mut impl MetricSink, s: &str) {
    let mut start = 0;
    for (i, c) in s.char_indices() {
        let esc: Option<&str> = match c {
            '"' => Some("\\\""),
            '\\' => Some("\\\\"),
            '\n' => Some("\\n"),
            '\r' => Some("\\r"),
            '\t' => Some("\\t"),
            c if (c as u32) < 0x20 => Some("\\u0000"), // rare; lossy but valid JSON
            _ => None,
        };
        if let Some(e) = esc {
            if start < i {
                sink.put(&s[start..i]);
            }
            sink.put(e);
            start = i + c.len_utf8();
        }
    }
    if start < s.len() {
        sink.put(&s[start..]);
    }
}

impl MetricsRegistry {
    /// Render every metric in Prometheus text-exposition format.
    /// Counters and gauges render as themselves; histograms render as
    /// summaries (`{quantile="..."}` series plus `_sum`/`_count`).
    /// Zero heap allocation per metric: values stream through the
    /// sink's stack formatter, names through [`put_sanitized`].
    pub fn write_prometheus_into<S: MetricSink>(&self, sink: &mut S) {
        let metrics = self.metrics.read();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    sink.put("# TYPE ");
                    put_sanitized(sink, name);
                    sink.put(" counter\n");
                    put_sanitized(sink, name);
                    sink.put(" ");
                    sink.put_u64(c.get());
                    sink.put("\n");
                }
                Metric::Gauge(g) => {
                    sink.put("# TYPE ");
                    put_sanitized(sink, name);
                    sink.put(" gauge\n");
                    put_sanitized(sink, name);
                    sink.put(" ");
                    sink.put_i64(g.get());
                    sink.put("\n");
                }
                Metric::Histogram(h) => {
                    let Some(core) = &h.inner else { continue };
                    let mut buckets = [0u64; crate::BUCKETS];
                    for (slot, b) in buckets.iter_mut().zip(core.buckets.iter()) {
                        *slot = b.load(Ordering::Relaxed);
                    }
                    let count: u64 = buckets.iter().sum();
                    let sum = core.sum.load(Ordering::Relaxed);
                    sink.put("# TYPE ");
                    put_sanitized(sink, name);
                    sink.put(" summary\n");
                    for (q, tag) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                        put_sanitized(sink, name);
                        sink.put("{quantile=\"");
                        sink.put(tag);
                        sink.put("\"} ");
                        sink.put_u64(percentile_from_buckets(&buckets, count, q));
                        sink.put("\n");
                    }
                    put_sanitized(sink, name);
                    sink.put("_sum ");
                    sink.put_u64(sum);
                    sink.put("\n");
                    put_sanitized(sink, name);
                    sink.put("_count ");
                    sink.put_u64(count);
                    sink.put("\n");
                }
            }
        }
    }

    /// Render every metric as the flat one-object-per-line JSON that
    /// [`crate::MetricsSnapshot::to_json`] writes (and the bench gate
    /// parses), without snapshotting: values are read live under the
    /// registry's read lock, streamed allocation-free into `sink`.
    pub fn write_json_into<S: MetricSink>(&self, sink: &mut S) {
        let metrics = self.metrics.read();
        sink.put("{\n");
        let total = metrics.len();
        for (i, (name, metric)) in metrics.iter().enumerate() {
            sink.put("  \"");
            put_json_escaped(sink, name);
            sink.put("\": ");
            match metric {
                Metric::Counter(c) => {
                    sink.put("{\"type\": \"counter\", \"value\": ");
                    sink.put_u64(c.get());
                    sink.put("}");
                }
                Metric::Gauge(g) => {
                    sink.put("{\"type\": \"gauge\", \"value\": ");
                    sink.put_i64(g.get());
                    sink.put("}");
                }
                Metric::Histogram(h) => {
                    let stats = h.stats();
                    sink.put("{\"type\": \"histogram\", \"count\": ");
                    sink.put_u64(stats.count);
                    sink.put(", \"sum\": ");
                    sink.put_u64(stats.sum);
                    sink.put(", \"min\": ");
                    sink.put_u64(stats.min);
                    sink.put(", \"max\": ");
                    sink.put_u64(stats.max);
                    sink.put(", \"mean\": ");
                    sink.put_tenths(stats.mean());
                    sink.put(", \"p50\": ");
                    sink.put_u64(stats.p50);
                    sink.put(", \"p90\": ");
                    sink.put_u64(stats.p90);
                    sink.put(", \"p99\": ");
                    sink.put_u64(stats.p99);
                    sink.put("}");
                }
            }
            if i + 1 != total {
                sink.put(",");
            }
            sink.put("\n");
        }
        sink.put("}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_integer_formatting() {
        let mut s = String::new();
        s.put_u64(0);
        s.put(" ");
        s.put_u64(18_446_744_073_709_551_615);
        s.put(" ");
        s.put_i64(-42);
        s.put(" ");
        s.put_tenths(3.26);
        assert_eq!(s, "0 18446744073709551615 -42 3.3");
    }

    #[test]
    fn sanitized_names_stream_in_runs() {
        let mut s = String::new();
        put_sanitized(&mut s, "container.fss.dispatches");
        assert_eq!(s, "container_fss_dispatches");
        let mut s = String::new();
        put_sanitized(&mut s, "a-b.c");
        assert_eq!(s, "a_b_c");
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        put_json_escaped(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_covers_all_kinds() {
        let reg = MetricsRegistry::enabled();
        reg.counter("jobs.done").add(3);
        reg.gauge("queue.depth").set(-1);
        reg.histogram("lat.ns").record(500);
        let mut out = String::new();
        reg.write_prometheus_into(&mut out);
        assert!(
            out.contains("# TYPE jobs_done counter\njobs_done 3\n"),
            "{out}"
        );
        assert!(out.contains("# TYPE queue_depth gauge\nqueue_depth -1\n"));
        assert!(out.contains("# TYPE lat_ns summary\n"));
        assert!(out.contains("lat_ns{quantile=\"0.99\"} 384\n"));
        assert!(out.contains("lat_ns_sum 500\n"));
        assert!(out.contains("lat_ns_count 1\n"));
    }

    #[test]
    fn json_render_matches_snapshot_encoding() {
        let reg = MetricsRegistry::enabled();
        reg.counter("c").add(7);
        reg.gauge("g").set(5);
        reg.histogram("h").record(1000);
        let mut live = String::new();
        reg.write_json_into(&mut live);
        // Identical shape to the snapshot encoder: the gate and the
        // monitor parser treat scrape output and dump files the same.
        let snap = reg.snapshot().to_json();
        assert_eq!(live, snap);
    }

    #[test]
    fn len_sink_sizes_exactly() {
        let reg = MetricsRegistry::enabled();
        for i in 0..20 {
            reg.counter(&format!("c{i}")).add(i);
            reg.histogram(&format!("h{i}")).record(i * 100);
        }
        let mut text = Vec::new();
        reg.write_prometheus_into(&mut text);
        let mut len = LenSink::default();
        reg.write_prometheus_into(&mut len);
        assert_eq!(len.0, text.len());
        let mut jtext = Vec::new();
        reg.write_json_into(&mut jtext);
        let mut jlen = LenSink::default();
        reg.write_json_into(&mut jlen);
        assert_eq!(jlen.0, jtext.len());
    }
}
