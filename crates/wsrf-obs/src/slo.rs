//! SLO tracking: per-service rolling success-rate and p99-latency
//! windows with burn-rate computation.
//!
//! A [`SloTracker`] hands out one [`SloHandle`] per service (bounded
//! cardinality, like [`crate::CounterFamily`]: past the cap every new
//! service shares the `other` window). Each handle keeps a circular
//! window of time buckets rotated by the *virtual* clock, so on a
//! manual clock the math is exactly reproducible: a bucket covers
//! `bucket_ns` of virtual time, the window covers `buckets ×
//! bucket_ns`, and stale buckets are lazily reset when their slot
//! comes around again.
//!
//! **Burn rate** is the standard SRE quantity: observed error rate
//! divided by the error budget (`1 - target`). Burn 1.0 means the
//! service is consuming its budget exactly as fast as the SLO allows;
//! above 1.0 the budget is burning down and the service is unhealthy
//! over this window.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::{percentile_from_buckets, MetricsRegistry, BUCKETS};

/// Window geometry + objective for every service in a tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Virtual width of one window bucket, nanoseconds.
    pub bucket_ns: u64,
    /// Number of buckets in the rolling window.
    pub buckets: usize,
    /// Success-rate objective in parts per million (999_000 = 99.9%).
    pub target_ppm: u32,
    /// Max distinct services before new ones share the `other` window.
    pub cap: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            // 8 × 30 s = a 4-virtual-minute window: long enough to hold
            // several Figure 3 makespans, short enough that recovery is
            // visible within a run.
            bucket_ns: 30_000_000_000,
            buckets: 8,
            target_ppm: 999_000,
            cap: 64,
        }
    }
}

/// Point-in-time health of one service over its rolling window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloHealth {
    pub service: Arc<str>,
    /// Operations observed in the window.
    pub total: u64,
    pub ok: u64,
    /// Success rate over the window; `1.0` when the window is empty.
    pub success_rate: f64,
    /// p99 latency over the window, at log-bucket resolution.
    pub p99_ns: u64,
    /// Error rate ÷ error budget; > 1.0 means the SLO is burning.
    pub burn_rate: f64,
    /// Virtual width of the window, nanoseconds.
    pub window_ns: u64,
}

impl SloHealth {
    /// Whether this window is inside its error budget.
    pub fn is_healthy(&self) -> bool {
        self.burn_rate <= 1.0
    }
}

struct SloBucket {
    /// `virt_ns / bucket_ns` of the interval this bucket currently
    /// holds; a slot whose epoch is stale is reset before reuse.
    epoch: u64,
    ok: u64,
    err: u64,
    lat: [u64; BUCKETS],
}

impl SloBucket {
    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.ok = 0;
        self.err = 0;
        self.lat = [0; BUCKETS];
    }
}

struct SloHandleInner {
    name: Arc<str>,
    config: SloConfig,
    window: Mutex<Vec<SloBucket>>,
}

/// Recording handle for one service's window. Cloning shares the
/// window; a disabled handle is `None` inside and free to call.
#[derive(Clone, Default)]
pub struct SloHandle {
    inner: Option<Arc<SloHandleInner>>,
}

impl SloHandle {
    pub fn noop() -> Self {
        SloHandle { inner: None }
    }

    fn new(name: &str, config: SloConfig) -> Self {
        SloHandle {
            inner: Some(Arc::new(SloHandleInner {
                name: Arc::from(name),
                config,
                window: Mutex::new(
                    (0..config.buckets.max(1))
                        .map(|_| SloBucket {
                            epoch: u64::MAX,
                            ok: 0,
                            err: 0,
                            lat: [0; BUCKETS],
                        })
                        .collect(),
                ),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one operation outcome at virtual time `now_ns`.
    /// `latency_ns` feeds the window's p99 (real or virtual — the
    /// caller picks one base per service and sticks to it).
    pub fn record(&self, ok: bool, latency_ns: u64, now_ns: u64) {
        let Some(inner) = &self.inner else { return };
        let epoch = now_ns / inner.config.bucket_ns.max(1);
        let mut window = inner.window.lock();
        let n = window.len();
        let bucket = &mut window[(epoch as usize) % n];
        if bucket.epoch != epoch {
            bucket.reset(epoch);
        }
        if ok {
            bucket.ok += 1;
        } else {
            bucket.err += 1;
        }
        bucket.lat[crate::bucket_index(latency_ns)] += 1;
    }

    /// Health over the window ending at virtual time `now_ns`.
    pub fn health(&self, now_ns: u64) -> SloHealth {
        let Some(inner) = &self.inner else {
            return SloHealth {
                service: Arc::from(""),
                total: 0,
                ok: 0,
                success_rate: 1.0,
                p99_ns: 0,
                burn_rate: 0.0,
                window_ns: 0,
            };
        };
        let config = inner.config;
        let epoch_now = now_ns / config.bucket_ns.max(1);
        let oldest = epoch_now.saturating_sub(config.buckets.max(1) as u64 - 1);
        let mut ok = 0u64;
        let mut err = 0u64;
        let mut lat = [0u64; BUCKETS];
        for bucket in inner.window.lock().iter() {
            // Only buckets inside [oldest, now]; slots carrying stale
            // epochs (not yet lazily reset) are out of window.
            if bucket.epoch >= oldest && bucket.epoch <= epoch_now {
                ok += bucket.ok;
                err += bucket.err;
                for (acc, v) in lat.iter_mut().zip(bucket.lat.iter()) {
                    *acc += v;
                }
            }
        }
        let total = ok + err;
        let success_rate = if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        };
        let budget = 1.0 - config.target_ppm.min(1_000_000) as f64 / 1e6;
        let error_rate = 1.0 - success_rate;
        let burn_rate = if error_rate == 0.0 {
            0.0
        } else if budget <= 0.0 {
            f64::INFINITY
        } else {
            error_rate / budget
        };
        SloHealth {
            service: inner.name.clone(),
            total,
            ok,
            success_rate,
            p99_ns: percentile_from_buckets(&lat, total, 0.99),
            burn_rate,
            window_ns: config.bucket_ns.saturating_mul(config.buckets as u64),
        }
    }
}

struct SloTrackerInner {
    config: SloConfig,
    services: RwLock<BTreeMap<String, SloHandle>>,
    overflow: SloHandle,
}

/// Per-deployment SLO tracker: bounded map of service name →
/// [`SloHandle`]. Cloning shares the map.
#[derive(Clone, Default)]
pub struct SloTracker {
    inner: Option<Arc<SloTrackerInner>>,
}

impl SloTracker {
    pub fn noop() -> Self {
        SloTracker { inner: None }
    }

    pub fn new(config: SloConfig, metrics: &MetricsRegistry) -> Self {
        if !metrics.is_enabled() {
            return SloTracker::noop();
        }
        SloTracker {
            inner: Some(Arc::new(SloTrackerInner {
                config,
                services: RwLock::new(BTreeMap::new()),
                overflow: SloHandle::new("other", config),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The handle for `service`, creating its window unless the tracker
    /// is at capacity (then the shared `other` window). Handles are
    /// cached: the hot path is one read-locked map probe.
    pub fn service(&self, service: &str) -> SloHandle {
        let Some(inner) = &self.inner else {
            return SloHandle::noop();
        };
        if let Some(h) = inner.services.read().get(service) {
            return h.clone();
        }
        let mut services = inner.services.write();
        if let Some(h) = services.get(service) {
            return h.clone();
        }
        if services.len() >= inner.config.cap {
            return inner.overflow.clone();
        }
        let h = SloHandle::new(service, inner.config);
        services.insert(service.to_string(), h.clone());
        h
    }

    /// Number of distinct services holding their own window.
    pub fn distinct(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.services.read().len())
            .unwrap_or(0)
    }

    /// Health of every tracked service (overflow included when it has
    /// data), sorted by name, at virtual time `now_ns`.
    pub fn health_all(&self, now_ns: u64) -> Vec<SloHealth> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out: Vec<SloHealth> = inner
            .services
            .read()
            .values()
            .map(|h| h.health(now_ns))
            .collect();
        let overflow = inner.overflow.health(now_ns);
        if overflow.total > 0 {
            out.push(overflow);
        }
        out.sort_by(|a, b| a.service.cmp(&b.service));
        out
    }

    /// Health of one service, `None` if it was never recorded.
    pub fn health(&self, service: &str, now_ns: u64) -> Option<SloHealth> {
        let inner = self.inner.as_ref()?;
        let handle = inner.services.read().get(service)?.clone();
        Some(handle.health(now_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(config: SloConfig) -> SloTracker {
        SloTracker::new(config, &MetricsRegistry::enabled())
    }

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burn_rate_math_is_exact() {
        // 1s buckets, 4-bucket window, 99% target → 1% error budget.
        let t = tracker(SloConfig {
            bucket_ns: SEC,
            buckets: 4,
            target_ppm: 990_000,
            cap: 8,
        });
        let h = t.service("es");
        // 98 ok + 2 errors in one bucket: error rate 2%, budget 1% → burn 2.0.
        for _ in 0..98 {
            h.record(true, 1_000, 0);
        }
        h.record(false, 5_000, 0);
        h.record(false, 5_000, 0);
        let health = h.health(0);
        assert_eq!(health.total, 100);
        assert_eq!(health.ok, 98);
        assert!((health.success_rate - 0.98).abs() < 1e-12);
        assert!(
            (health.burn_rate - 2.0).abs() < 1e-9,
            "{}",
            health.burn_rate
        );
        assert!(!health.is_healthy());
        assert_eq!(health.window_ns, 4 * SEC);
    }

    #[test]
    fn window_rotation_forgets_old_errors() {
        let t = tracker(SloConfig {
            bucket_ns: SEC,
            buckets: 4,
            target_ppm: 990_000,
            cap: 8,
        });
        let h = t.service("es");
        h.record(false, 1_000, 0); // epoch 0
        assert!(h.health(0).burn_rate > 1.0);
        // Still in window at t=3s (window covers epochs 0..=3)...
        h.record(true, 1_000, 3 * SEC);
        assert_eq!(h.health(3 * SEC).total, 2);
        // ...gone at t=4s: epoch 0 fell out of the 4-bucket window.
        let health = h.health(4 * SEC);
        assert_eq!(health.total, 1);
        assert_eq!(health.burn_rate, 0.0);
        assert!(health.is_healthy());
        // And the slot is reset when its turn comes around again.
        h.record(true, 1_000, 4 * SEC); // epoch 4 reuses slot 0
        assert_eq!(h.health(4 * SEC).total, 2);
        assert_eq!(h.health(4 * SEC).ok, 2);
    }

    #[test]
    fn p99_reads_from_window_latencies() {
        let t = tracker(SloConfig::default());
        let h = t.service("fss");
        for _ in 0..98 {
            h.record(true, 500, 0); // bucket 8 → midpoint 384
        }
        // rank(p99) of 100 samples is 99 — these two put it in the
        // slow bucket.
        h.record(true, 100_000, 0); // bucket 16 → midpoint 98304
        h.record(true, 100_000, 0);
        let health = h.health(0);
        assert_eq!(health.p99_ns, 98304);
        assert_eq!(health.success_rate, 1.0);
    }

    #[test]
    fn tracker_caps_service_cardinality() {
        let t = tracker(SloConfig {
            cap: 2,
            ..SloConfig::default()
        });
        t.service("a").record(true, 1, 0);
        t.service("b").record(true, 1, 0);
        t.service("c").record(false, 1, 0); // over cap → shared "other"
        t.service("d").record(false, 1, 0);
        assert_eq!(t.distinct(), 2);
        let all = t.health_all(0);
        let names: Vec<&str> = all.iter().map(|h| &*h.service).collect();
        assert_eq!(names, ["a", "b", "other"]);
        let other = all.iter().find(|h| &*h.service == "other").unwrap();
        assert_eq!(other.total, 2, "past-cap services share one window");
    }

    #[test]
    fn empty_window_is_healthy() {
        let t = tracker(SloConfig::default());
        let h = t.service("idle");
        let health = h.health(0);
        assert_eq!(health.total, 0);
        assert_eq!(health.success_rate, 1.0);
        assert_eq!(health.burn_rate, 0.0);
        assert!(health.is_healthy());
        // Disabled tracker hands out free noops.
        let off = SloTracker::new(SloConfig::default(), &MetricsRegistry::disabled());
        assert!(!off.is_enabled());
        off.service("x").record(true, 1, 0);
        assert!(off.health_all(0).is_empty());
    }
}
