//! # wsrf-obs
//!
//! Grid-wide observability for the WSRF testbed: a lock-cheap metrics
//! registry threaded through the container dispatch pipeline
//! (Figure 1), the transports, the notification broker, and the UVaCG
//! scheduler (Figure 3).
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost ≈ one atomic op.** Handles ([`Counter`],
//!    [`Gauge`], [`Histogram`]) are `Arc`s onto pre-registered atomics;
//!    recording never takes a lock. The registry's `RwLock` is touched
//!    only at registration and snapshot time.
//! 2. **Opt-out is free.** A registry built from
//!    [`ObsConfig::disabled`] hands out empty handles whose record
//!    methods are a branch on a `None` — no atomics, no allocation, so
//!    instrumented code needs no `if` of its own.
//! 3. **Virtual and real time are separate truths.** The testbed runs
//!    simulated costs against [`simclock::Clock`]; a [`Timer`] span
//!    therefore records *two* histograms, `<name>.virt_ns` (what the
//!    simulation says happened) and `<name>.real_ns` (what the host
//!    actually spent), so "the protocol costs 400 virtual ms" and "the
//!    container overhead is 3 real µs" never get conflated.
//!
//! Histograms use fixed log-scale (power-of-two) buckets, one per bit
//! position of the recorded value, like HdrHistogram's coarsest
//! configuration: bucket `i` covers `[2^i, 2^(i+1))` nanoseconds.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use simclock::{Clock, SimTime};

pub mod events;
pub mod expose;
pub mod slo;
pub mod tracing;

pub use events::{Event, EventKind, EventLog, Severity};
pub use expose::{LenSink, MetricSink};
pub use slo::{SloConfig, SloHandle, SloHealth, SloTracker};
pub use tracing::{ActiveSpan, FinishedSpan, SpanContext, TraceConfig, TraceSnapshot, Tracer};

/// Number of log-scale buckets: one per bit of a `u64` nanosecond
/// value (bucket 63 absorbs everything ≥ 2^63).
pub const BUCKETS: usize = 64;

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Default per-severity retention of the structured event log.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Whether a [`MetricsRegistry`] records anything, and how much the
/// attached event log and SLO tracker retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    enabled: bool,
    event_capacity: usize,
    slo: SloConfig,
}

impl ObsConfig {
    /// Recording on (the default).
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            slo: SloConfig::default(),
        }
    }

    /// Recording off: every handle the registry hands out is a no-op.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            event_capacity: 0,
            slo: SloConfig::default(),
        }
    }

    /// Retain up to `n` events per severity in the structured event
    /// log (`0` disables the log while keeping metrics on).
    pub fn with_event_capacity(mut self, n: usize) -> Self {
        self.event_capacity = n;
        self
    }

    /// Metrics on, event log off — the E14 ablation arm.
    pub fn without_events(self) -> Self {
        self.with_event_capacity(0)
    }

    /// Override the SLO window geometry/objective.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = slo;
        self
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn event_capacity(&self) -> usize {
        self.event_capacity
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::enabled()
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Monotonic counter. Cloning shares the underlying atomic.
#[derive(Clone, Default)]
pub struct Counter {
    inner: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A detached no-op counter (what disabled registries hand out).
    pub fn noop() -> Self {
        Counter { inner: None }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if let Some(a) = &self.inner {
            a.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|a| a.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A bounded-cardinality family of counters `<prefix>.<label>.<suffix>`.
///
/// Labels come from open sets (topic roots, authorities, tenants): a
/// million-label run must not mint a million counters. The first `cap`
/// distinct labels each get their own counter; every label past the cap
/// shares a single `<prefix>.other.<suffix>` overflow counter, so the
/// registry stays bounded no matter what the traffic looks like.
/// Handles are cached, so the hot path is one read-locked map probe —
/// no per-increment name formatting.
pub struct CounterFamily {
    prefix: String,
    suffix: String,
    cap: usize,
    slots: RwLock<BTreeMap<String, Counter>>,
    overflow: Counter,
    registry: Arc<MetricsRegistry>,
}

impl CounterFamily {
    /// The counter for `label`, creating it unless the family is at
    /// capacity (then the shared overflow counter).
    pub fn counter(&self, label: &str) -> Counter {
        if !self.registry.is_enabled() {
            return Counter::noop();
        }
        if let Some(c) = self.slots.read().get(label) {
            return c.clone();
        }
        let mut slots = self.slots.write();
        if let Some(c) = slots.get(label) {
            return c.clone();
        }
        if slots.len() >= self.cap {
            return self.overflow.clone();
        }
        let c = self
            .registry
            .counter(&format!("{}.{label}.{}", self.prefix, self.suffix));
        slots.insert(label.to_string(), c.clone());
        c
    }

    /// Number of distinct labels holding their own counter.
    pub fn distinct(&self) -> usize {
        self.slots.read().len()
    }
}

/// A bounded-cardinality family of histograms `<prefix>.<label><suffix>`
/// — [`CounterFamily`]'s rule applied to histograms. The suffix is
/// appended verbatim (e.g. `_ns`), matching names like
/// `transport.inproc.modeled.<authority>_ns`; past `cap` distinct
/// labels every new label shares the `<prefix>.other<suffix>` overflow
/// histogram. Handles are cached, so the hot path is one read-locked
/// map probe — no per-record name formatting.
pub struct HistogramFamily {
    prefix: String,
    suffix: String,
    cap: usize,
    slots: RwLock<BTreeMap<String, Histogram>>,
    overflow: Histogram,
    registry: Arc<MetricsRegistry>,
}

impl HistogramFamily {
    /// The histogram for `label`, creating it unless the family is at
    /// capacity (then the shared overflow histogram).
    pub fn histogram(&self, label: &str) -> Histogram {
        if !self.registry.is_enabled() {
            return Histogram::noop();
        }
        if let Some(h) = self.slots.read().get(label) {
            return h.clone();
        }
        let mut slots = self.slots.write();
        if let Some(h) = slots.get(label) {
            return h.clone();
        }
        if slots.len() >= self.cap {
            return self.overflow.clone();
        }
        let h = self
            .registry
            .histogram(&format!("{}.{label}{}", self.prefix, self.suffix));
        slots.insert(label.to_string(), h.clone());
        h
    }

    /// Number of distinct labels holding their own histogram.
    pub fn distinct(&self) -> usize {
        self.slots.read().len()
    }
}

/// Last-value gauge (signed, so it can count in-flight work down as
/// well as up).
#[derive(Clone, Default)]
pub struct Gauge {
    inner: Option<Arc<AtomicI64>>,
}

impl Gauge {
    pub fn noop() -> Self {
        Gauge { inner: None }
    }

    pub fn set(&self, v: i64) {
        if let Some(a) = &self.inner {
            a.store(v, Ordering::Relaxed);
        }
    }

    pub fn add(&self, n: i64) {
        if let Some(a) = &self.inner {
            a.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    pub fn get(&self) -> i64 {
        self.inner
            .as_ref()
            .map(|a| a.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Fixed log-scale-bucket histogram of `u64` values (nanoseconds by
/// convention). Cloning shares the underlying buckets.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Option<Arc<HistogramCore>>,
}

/// Bucket index for a value: its bit length, so bucket `i` holds
/// values in `[2^i, 2^(i+1))`; zero lands in bucket 0.
pub fn bucket_index(value: u64) -> usize {
    (63 - value.max(1).leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_floor(i: usize) -> u64 {
    1u64 << i
}

impl Histogram {
    pub fn noop() -> Self {
        Histogram { inner: None }
    }

    pub fn record(&self, value: u64) {
        let Some(core) = &self.inner else { return };
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|c| c.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Point-in-time estimate of the `q`-quantile (`quantile(0.5)` is
    /// the median), at log-bucket resolution like the `p50/p90/p99`
    /// fields of [`Histogram::stats`]. `0` on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(core) = &self.inner else { return 0 };
        let buckets: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return 0;
        }
        percentile_from_buckets(&buckets, count, q.clamp(0.0, 1.0))
    }

    /// Consistent-enough point-in-time stats (values recorded while
    /// snapshotting may appear partially — counts never go backwards
    /// and `sum/count` stays a valid mean of *some* prefix).
    pub fn stats(&self) -> HistogramStats {
        let Some(core) = &self.inner else {
            return HistogramStats::default();
        };
        let buckets: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive count from the bucket vector itself so percentile
        // math is internally consistent even mid-write.
        let count: u64 = buckets.iter().sum();
        let sum = core.sum.load(Ordering::Relaxed);
        let min = core.min.load(Ordering::Relaxed);
        let max = core.max.load(Ordering::Relaxed);
        HistogramStats {
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
            p50: percentile_from_buckets(&buckets, count, 0.50),
            p90: percentile_from_buckets(&buckets, count, 0.90),
            p99: percentile_from_buckets(&buckets, count, 0.99),
        }
    }
}

fn percentile_from_buckets(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            // Midpoint of the bucket's span as the estimate.
            let lo = bucket_floor(i);
            return lo + lo / 2;
        }
    }
    bucket_floor(BUCKETS - 1)
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramStats {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramStats {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A pair of histograms measuring the same span in two time bases:
/// virtual (simulated cost, from [`simclock::Clock`]) and real (host
/// wall clock).
#[derive(Clone, Default)]
pub struct Timer {
    virt: Histogram,
    real: Histogram,
}

impl Timer {
    pub fn noop() -> Self {
        Timer::default()
    }

    /// Starts a span; record by dropping the returned guard (or
    /// calling [`Span::finish`]). On a disabled registry this reads
    /// neither clock.
    pub fn start(&self, clock: &Clock) -> Span {
        if self.virt.inner.is_none() && self.real.inner.is_none() {
            return Span { live: None };
        }
        Span {
            live: Some(LiveSpan {
                timer: self.clone(),
                clock: clock.clone(),
                virt_start: clock.now(),
                real_start: Instant::now(),
            }),
        }
    }

    /// Records a span measured externally.
    pub fn record(&self, virt: Duration, real: Duration) {
        self.virt.record_duration(virt);
        self.real.record_duration(real);
    }

    pub fn virt_stats(&self) -> HistogramStats {
        self.virt.stats()
    }

    pub fn real_stats(&self) -> HistogramStats {
        self.real.stats()
    }

    pub fn count(&self) -> u64 {
        self.virt.count()
    }
}

struct LiveSpan {
    timer: Timer,
    clock: Clock,
    virt_start: SimTime,
    real_start: Instant,
}

/// Guard for an in-flight [`Timer`] span.
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    /// Explicit end (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let virt = live.clock.now().since(live.virt_start);
            let real = live.real_start.elapsed();
            live.timer.record(virt, real);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Named metrics for one deployment (a grid, a bench run, a test).
/// Cheap to share via `Arc`; handle lookups lock briefly, recording
/// through handles never does.
pub struct MetricsRegistry {
    enabled: bool,
    metrics: RwLock<BTreeMap<String, Metric>>,
    tracer: Tracer,
    events: EventLog,
    slo: SloTracker,
}

impl MetricsRegistry {
    pub fn new(config: ObsConfig) -> Arc<Self> {
        Self::with_tracing(config, TraceConfig::disabled())
    }

    /// A registry that also hands out a [`Tracer`]. The tracer's
    /// `trace.*` counters live in this registry (and are no-ops when
    /// `config` disables metrics — spans still record). The structured
    /// [`EventLog`] and [`SloTracker`] attach the same way: their
    /// counters register here, and a disabled registry makes both
    /// no-ops.
    pub fn with_tracing(config: ObsConfig, trace: TraceConfig) -> Arc<Self> {
        let mut reg = MetricsRegistry {
            enabled: config.is_enabled(),
            metrics: RwLock::new(BTreeMap::new()),
            tracer: Tracer::noop(),
            events: EventLog::noop(),
            slo: SloTracker::noop(),
        };
        reg.tracer = Tracer::new(trace, &reg);
        if config.is_enabled() {
            reg.events = EventLog::new(config.event_capacity, &reg);
            reg.slo = SloTracker::new(config.slo, &reg);
        }
        Arc::new(reg)
    }

    /// An enabled registry (the common case).
    pub fn enabled() -> Arc<Self> {
        Self::new(ObsConfig::enabled())
    }

    /// A registry whose handles are all no-ops.
    pub fn disabled() -> Arc<Self> {
        Self::new(ObsConfig::disabled())
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// This deployment's tracer (disabled unless the registry was
    /// built with [`MetricsRegistry::with_tracing`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// This deployment's structured event log (a no-op on a disabled
    /// registry, or when [`ObsConfig::with_event_capacity`] is 0).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// This deployment's SLO tracker (a no-op on a disabled registry).
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// Gets or creates the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        if let Some(Metric::Counter(c)) = self.metrics.read().get(name) {
            return c.clone();
        }
        let mut metrics = self.metrics.write();
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Counter(Counter {
                inner: Some(Arc::new(AtomicU64::new(0))),
            })
        }) {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// A bounded family of counters named `<prefix>.<label>.<suffix>`;
    /// at most `cap` distinct labels, the rest collapse into
    /// `<prefix>.other.<suffix>`.
    pub fn counter_family(
        self: &Arc<Self>,
        prefix: &str,
        suffix: &str,
        cap: usize,
    ) -> CounterFamily {
        CounterFamily {
            prefix: prefix.to_string(),
            suffix: suffix.to_string(),
            cap,
            slots: RwLock::new(BTreeMap::new()),
            overflow: self.counter(&format!("{prefix}.other.{suffix}")),
            registry: self.clone(),
        }
    }

    /// A bounded family of histograms named `<prefix>.<label><suffix>`
    /// (suffix verbatim, e.g. `_ns`); at most `cap` distinct labels,
    /// the rest collapse into `<prefix>.other<suffix>`.
    pub fn histogram_family(
        self: &Arc<Self>,
        prefix: &str,
        suffix: &str,
        cap: usize,
    ) -> HistogramFamily {
        HistogramFamily {
            prefix: prefix.to_string(),
            suffix: suffix.to_string(),
            cap,
            slots: RwLock::new(BTreeMap::new()),
            overflow: self.histogram(&format!("{prefix}.other{suffix}")),
            registry: self.clone(),
        }
    }

    /// Gets or creates the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        if let Some(Metric::Gauge(g)) = self.metrics.read().get(name) {
            return g.clone();
        }
        let mut metrics = self.metrics.write();
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Gauge(Gauge {
                inner: Some(Arc::new(AtomicI64::new(0))),
            })
        }) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or creates the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        if let Some(Metric::Histogram(h)) = self.metrics.read().get(name) {
            return h.clone();
        }
        let mut metrics = self.metrics.write();
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram {
                inner: Some(Arc::new(HistogramCore::new())),
            })
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or creates a virtual+real timer pair: `<name>.virt_ns` and
    /// `<name>.real_ns`.
    pub fn timer(&self, name: &str) -> Timer {
        if !self.enabled {
            return Timer::noop();
        }
        Timer {
            virt: self.histogram(&format!("{name}.virt_ns")),
            real: self.histogram(&format!("{name}.real_ns")),
        }
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read();
        let entries = metrics
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.stats()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// One rendered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramStats),
}

/// Sorted point-in-time view of a registry, renderable as a table or
/// JSON.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub entries: Vec<(String, MetricValue)>,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    pub fn histogram(&self, name: &str) -> Option<HistogramStats> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(*h),
            _ => None,
        })
    }

    /// Fixed-width table; what the bench harness prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<52} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "metric", "count", "mean", "p50", "p99", "max"
        );
        let _ = writeln!(out, "{}", "-".repeat(116));
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name:<52} {c:>10}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name:<52} {g:>10}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{:<52} {:>10} {:>12} {:>12} {:>12} {:>12}",
                        name,
                        h.count,
                        fmt_ns(h.mean() as u64),
                        fmt_ns(h.p50),
                        fmt_ns(h.p99),
                        fmt_ns(h.max),
                    );
                }
            }
        }
        out
    }

    /// Minimal JSON encoding (no external deps): a flat object keyed
    /// by metric name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "  {:?}: {{\"type\": \"counter\", \"value\": {c}}}{comma}",
                        name
                    );
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "  {:?}: {{\"type\": \"gauge\", \"value\": {g}}}{comma}",
                        name
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "  {:?}: {{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}{comma}",
                        name, h.count, h.sum, h.min, h.max, h.mean(), h.p50, h.p90, h.p99
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::enabled();
        let c = reg.counter("a.count");
        c.inc();
        c.add(4);
        let g = reg.gauge("a.gauge");
        g.set(7);
        g.sub(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.gauge("a.gauge"), Some(5));
    }

    #[test]
    fn counter_family_caps_cardinality() {
        let reg = MetricsRegistry::enabled();
        let fam = reg.counter_family("broker.topic", "publishes", 2);
        fam.counter("a").inc();
        fam.counter("b").add(2);
        fam.counter("a").inc(); // cached handle, same counter
        fam.counter("c").inc(); // over cap → overflow
        fam.counter("d").inc(); // over cap → overflow
        assert_eq!(fam.distinct(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("broker.topic.a.publishes"), Some(2));
        assert_eq!(snap.counter("broker.topic.b.publishes"), Some(2));
        assert_eq!(snap.counter("broker.topic.other.publishes"), Some(2));
        assert_eq!(snap.counter("broker.topic.c.publishes"), None);
    }

    #[test]
    fn counter_family_overflow_bucket_semantics() {
        // Past the cap, every new label shares ONE overflow counter:
        // increments from different labels land in the same atomic,
        // re-probing an in-cap label still returns its own counter, and
        // `distinct` never moves past the cap.
        let reg = MetricsRegistry::enabled();
        let fam = reg.counter_family("fam", "hits", 2);
        fam.counter("a").inc();
        fam.counter("b").inc();
        for label in ["c", "d", "e", "c", "c"] {
            fam.counter(label).inc();
        }
        assert_eq!(fam.distinct(), 2, "cap holds under overflow traffic");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("fam.other.hits"),
            Some(5),
            "all past-cap labels share the overflow atomic"
        );
        assert_eq!(snap.counter("fam.a.hits"), Some(1));
        // In-cap labels stay addressable after overflow began.
        fam.counter("a").add(9);
        assert_eq!(reg.snapshot().counter("fam.a.hits"), Some(10));
        // No per-label metric was ever minted past the cap.
        for ghost in ["fam.c.hits", "fam.d.hits", "fam.e.hits"] {
            assert_eq!(reg.snapshot().counter(ghost), None, "{ghost}");
        }
    }

    #[test]
    fn histogram_family_caps_cardinality() {
        let reg = MetricsRegistry::enabled();
        let fam = reg.histogram_family("transport.inproc.modeled", "_ns", 2);
        fam.histogram("machine01").record(100);
        fam.histogram("machine02").record(200);
        fam.histogram("machine01").record(100); // cached handle
        fam.histogram("rogue1").record(999); // over cap → overflow
        fam.histogram("rogue2").record(999);
        assert_eq!(fam.distinct(), 2);
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram("transport.inproc.modeled.machine01_ns")
                .unwrap()
                .count,
            2
        );
        assert_eq!(
            snap.histogram("transport.inproc.modeled.other_ns")
                .unwrap()
                .count,
            2,
            "past-cap labels share the overflow histogram"
        );
        assert!(snap
            .histogram("transport.inproc.modeled.rogue1_ns")
            .is_none());
        // Disabled registries hand out free noops.
        let off = MetricsRegistry::disabled();
        let fam = off.histogram_family("f", "_ns", 4);
        fam.histogram("a").record(1);
        assert_eq!(fam.distinct(), 0);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn counter_family_on_disabled_registry_is_noop() {
        let reg = MetricsRegistry::disabled();
        let fam = reg.counter_family("f", "s", 4);
        fam.counter("a").inc();
        assert_eq!(fam.distinct(), 0);
        assert_eq!(reg.snapshot().counter("f.a.s"), None);
    }

    #[test]
    fn same_name_returns_shared_handle() {
        let reg = MetricsRegistry::enabled();
        reg.counter("x").inc();
        reg.counter("x").inc();
        assert_eq!(reg.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn disabled_registry_is_invisible() {
        let reg = MetricsRegistry::new(ObsConfig::disabled());
        reg.counter("x").add(100);
        reg.histogram("h").record(5);
        reg.gauge("g").set(3);
        let snap = reg.snapshot();
        assert!(snap.is_empty());
        assert_eq!(reg.counter("x").get(), 0);
    }

    #[test]
    fn timer_span_records_both_bases() {
        let reg = MetricsRegistry::enabled();
        let clock = Clock::manual();
        let t = reg.timer("op");
        {
            let _span = t.start(&clock);
            clock.advance(Duration::from_millis(250));
        }
        let virt = t.virt_stats();
        assert_eq!(virt.count, 1);
        assert_eq!(virt.sum, 250_000_000);
        assert_eq!(t.real_stats().count, 1);
        // Real time for an in-process advance is well under 250 virtual ms.
        assert!(t.real_stats().sum < 250_000_000);
    }

    #[test]
    fn snapshot_table_renders_all_kinds() {
        let reg = MetricsRegistry::enabled();
        reg.counter("c").add(3);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(1500);
        let table = reg.snapshot().render();
        assert!(table.contains("c") && table.contains("3"));
        assert!(table.contains("-2"));
        assert!(table.contains("1.50us") || table.contains("us"), "{table}");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i covers [2^i, 2^(i+1)); zero joins bucket 0.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        for i in 0..BUCKETS {
            let lo = bucket_floor(i);
            assert_eq!(bucket_index(lo), i, "floor of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_index(lo * 2 - 1), i, "ceiling of bucket {i}");
                assert_eq!(bucket_index(lo * 2), i + 1, "first value past bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);

        // Recorded values land where the index math says they do.
        let reg = MetricsRegistry::enabled();
        let h = reg.histogram("b");
        for v in [0u64, 1, 2, 3, 1023, 1024, 1025] {
            h.record(v);
        }
        let stats = h.stats();
        assert_eq!(stats.count, 7);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 1025);
        assert_eq!(stats.sum, 0 + 1 + 2 + 3 + 1023 + 1024 + 1025);
    }

    #[test]
    fn concurrent_counter_increments_all_land() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let reg = MetricsRegistry::enabled();
        crossbeam::scope(|s| {
            for _ in 0..THREADS {
                let reg = &reg;
                s.spawn(move |_| {
                    // Mix shared-handle and by-name lookups so the
                    // registry's read-then-write insert race is
                    // exercised too.
                    let c = reg.counter("hot");
                    for i in 0..PER_THREAD {
                        if i % 2 == 0 {
                            c.inc();
                        } else {
                            reg.counter("hot").inc();
                        }
                        reg.histogram("lat").record(i);
                    }
                });
            }
        })
        .unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hot"), Some(THREADS as u64 * PER_THREAD));
        assert_eq!(
            snap.histogram("lat").unwrap().count,
            THREADS as u64 * PER_THREAD
        );
    }

    #[test]
    fn snapshot_while_writing_stays_consistent() {
        let reg = MetricsRegistry::enabled();
        let stop = AtomicU64::new(0);
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let reg = &reg;
                let stop = &stop;
                s.spawn(move |_| {
                    let h = reg.histogram("h");
                    let c = reg.counter("c");
                    while stop.load(Ordering::Relaxed) == 0 {
                        h.record(500);
                        c.inc();
                    }
                });
            }
            // Snapshots taken mid-write must be internally coherent:
            // percentiles derive from the same bucket vector as the
            // count, and counts never move backwards.
            let mut last_count = 0;
            for _ in 0..200 {
                let snap = reg.snapshot();
                if let Some(stats) = snap.histogram("h") {
                    assert!(stats.count >= last_count, "count went backwards");
                    last_count = stats.count;
                    if stats.count > 0 {
                        // 500 lives in bucket 8 ([256, 512)); the
                        // midpoint estimate for every percentile is 384.
                        assert_eq!(stats.p50, 384);
                        assert_eq!(stats.p99, 384);
                        assert_eq!(stats.min, 500);
                        assert_eq!(stats.max, 500);
                    }
                }
            }
            stop.store(1, Ordering::Relaxed);
        })
        .unwrap();
        let final_snap = reg.snapshot();
        assert_eq!(
            final_snap.histogram("h").unwrap().count,
            final_snap.counter("c").unwrap()
        );
    }

    #[test]
    fn virtual_and_real_spans_stay_separate() {
        // A span covering a large virtual advance but trivial real time
        // must not leak one base into the other (and vice versa a
        // real-time sleep must not advance the virtual histogram).
        let reg = MetricsRegistry::enabled();
        let clock = Clock::manual();
        let t = reg.timer("mixed");
        {
            let span = t.start(&clock);
            clock.advance(Duration::from_secs(3600));
            span.finish();
        }
        {
            let span = t.start(&clock);
            std::thread::sleep(Duration::from_millis(5));
            span.finish();
        }
        let virt = t.virt_stats();
        let real = t.real_stats();
        assert_eq!(virt.count, 2);
        assert_eq!(real.count, 2);
        assert_eq!(virt.max, 3_600_000_000_000, "virtual hour recorded exactly");
        assert_eq!(virt.min, 0, "sleep span advanced no virtual time");
        assert!(
            real.max < 3_600_000_000_000,
            "real base not polluted by virtual"
        );
        assert!(real.max >= 5_000_000, "real sleep recorded");
        // And they surface as distinct snapshot entries.
        let snap = reg.snapshot();
        assert!(snap.histogram("mixed.virt_ns").is_some());
        assert!(snap.histogram("mixed.real_ns").is_some());
    }

    #[test]
    fn quantile_edge_cases() {
        // Detached (no-op) histogram: every quantile is 0.
        assert_eq!(Histogram::noop().quantile(0.5), 0);

        let reg = MetricsRegistry::enabled();
        let h = reg.histogram("q");
        // Empty histogram: 0 regardless of q.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0, "empty at q={q}");
        }

        // Single sample: every quantile resolves to its bucket's
        // midpoint estimate (500 lives in [256, 512) → 384).
        h.record(500);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 384, "single sample at q={q}");
        }

        // q = 0.0 clamps to rank 1 (the lowest bucket), q = 1.0 to the
        // highest occupied bucket.
        h.record(4); // bucket 2 → midpoint 6
        h.record(100_000); // bucket 16 → midpoint 98304
        assert_eq!(h.quantile(0.0), 6);
        assert_eq!(h.quantile(1.0), 98304);

        // Out-of-range q clamps rather than panicking or extrapolating.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(42.0), h.quantile(1.0));
    }

    #[test]
    fn registry_with_tracing_hands_out_live_tracer() {
        let reg = MetricsRegistry::with_tracing(ObsConfig::enabled(), TraceConfig::enabled());
        assert!(reg.tracer().is_enabled());
        let clock = Clock::manual();
        reg.tracer().start_root("r", "svc", &clock).finish();
        assert_eq!(reg.snapshot().counter("trace.spans_finished"), Some(1));
        // Plain construction keeps tracing off.
        assert!(!MetricsRegistry::enabled().tracer().is_enabled());
        // Metrics-off + tracing-on: spans record, counters are no-ops.
        let quiet = MetricsRegistry::with_tracing(ObsConfig::disabled(), TraceConfig::enabled());
        quiet.tracer().start_root("r", "svc", &clock).finish();
        assert_eq!(quiet.tracer().snapshot().len(), 1);
        assert!(quiet.snapshot().is_empty());
    }

    #[test]
    fn json_is_parseable_shape() {
        let reg = MetricsRegistry::enabled();
        reg.counter("c").inc();
        reg.histogram("h").record(10);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"type\": \"counter\""));
        assert!(json.contains("\"type\": \"histogram\""));
    }
}
