#!/usr/bin/env sh
# Tier-1 verification gate: everything a PR must keep green.
#
#   sh scripts/tier1.sh
#
# Fully offline: the workspace vendors shims for all external crates
# (see Cargo.toml [workspace.dependencies]), so no network is needed.
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo test -q --release --offline scale_stress"
# The contention-sensitive suites (scale stress, per-resource lease
# races) only exercise real interleavings at release-mode speed.
cargo test -q --release --offline --test scale_stress
cargo test -q --release --offline --test concurrency

echo "== cargo test -q --release --offline wirepath"
# The wire-path suites pin byte-for-byte serializer equivalence, the
# per-transport render budgets, and the inbound parse/DOM budgets
# (zero body DOMs per WS-RP read); release mode keeps the proptest
# cases and the real-socket exchanges fast.
cargo test -q --release --offline --test wirepath
cargo test -q --release --offline --test wirepath_renders
cargo test -q --release --offline --test wirepath_inbound
cargo test -q --release --offline -p wsrf-xml --test proptest_roundtrip

echo "== cargo test -q --release --offline durability + failover_chaos"
# The durability suite replays proptest-corrupted WALs and the chaos
# suite kills the primary scheduler at every Figure 3 step; release
# mode keeps the 48-case corruption sweep and the ten kill-point
# recovery cycles fast.
cargo test -q --release --offline --test durability
cargo test -q --release --offline --test failover_chaos

echo "== cargo test -q --release --offline broker_fanout + E13 smoke"
# The broker suite races subscription lifecycle ops against concurrent
# publishes (release mode for real interleavings); the E13 smoke row
# drives both fan-out paths (sharded index and legacy rescan) open-loop
# at 1k subscriptions.
cargo test -q --release --offline --test broker_fanout
cargo run -q --release --offline -p bench --bin harness -- --e13-smoke >/dev/null

echo "== cargo test -q --release --offline monitoring_plane + monitor smoke"
# The monitoring-plane suite round-trips the exposition endpoints over
# real sockets and aggregates two authorities; the smoke run then boots
# a monitored container standalone and scrapes /metrics and /healthz.
cargo test -q --release --offline --test monitoring_plane
cargo run -q --release --offline -p bench --bin harness -- --monitor-smoke >/dev/null

echo "== metrics + tracing regression gate"
# The metrics-only harness run boots the dump grid with tracing enabled
# (the tracing ablation configuration), so BENCH_metrics.json carries
# the trace.* counters and the gate pins them against the baseline
# alongside every other metric.
cargo run -q --release --offline -p bench --bin harness -- --metrics-only >/dev/null
cargo run -q --release --offline -p bench --bin gate

echo "tier-1: OK"
